"""Engine checkpointing: persist and restore a live engine's mutable state.

A production matcher is a long-running stateful service; restarts must not
forget budgets (advertisers would be double-charged), profiles, feed
contexts or CTR evidence. A checkpoint captures every piece of mutable
state the engine owns:

* the clock and message-id counter;
* retired-ad set (budget exhaustions and ended campaigns);
* budget spend per capped ad;
* per-user locations, interest profiles (raw weights + timestamps) and
  feed-context windows (raw entries — the decayed aggregate is rebuilt);
* CTR impression/click counts when feedback is on.

The *immutable* inputs (corpus of ads, graph, vectorizer, config) are the
caller's to reconstruct — typically from a saved workload — mirroring how
real deployments separate config/catalog stores from runtime state.

Restore is validated end-to-end by tests: a restored engine produces
bit-identical slates to the original for the remainder of the stream.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.engine import AdEngine
from repro.errors import ConfigError
from repro.geo.point import GeoPoint
from repro.profiles.context import FeedContext

_FORMAT_VERSION = 1


def _profile_state(profile) -> dict[str, Any]:
    return {
        "weights": profile._weights,
        "last_t": profile._last_t,
        "epoch": profile._epoch,
    }


def _context_state(context: FeedContext) -> list[dict[str, Any]]:
    return [
        {"msg_id": entry.msg_id, "timestamp": entry.timestamp, "vec": dict(entry.vec)}
        for entry in context._entries
    ]


def save_checkpoint(path: Path | str, engine: AdEngine) -> None:
    """Serialise the engine's mutable state to one JSON file.

    All mutable state hangs off the engine's
    :class:`~repro.core.services.EngineServices` (clock, user states,
    profiles, budgets, CTR evidence); the facade itself only adds the
    message-id counter and the launched-ad replay list.
    """
    services = engine.services
    users: dict[str, Any] = {}
    for user_id, state in services.users.items():
        record: dict[str, Any] = {}
        if state.location is not None:
            record["location"] = [state.location.lat, state.location.lon]
        if state.context is not None and len(state.context):
            record["context"] = _context_state(state.context)
            record["context_last_t"] = state.context.last_update
        users[str(user_id)] = record

    profiles: dict[str, Any] = {}
    for user_id in engine.profiles.users():
        profile = engine.profiles.get_or_create(user_id)
        if not profile.is_empty:
            profiles[str(user_id)] = _profile_state(profile)

    budgets = {
        str(ad_id): state.spent
        for ad_id, state in engine.budget._states.items()
        if state.spent > 0.0
    }

    ctr_state: dict[str, Any] | None = None
    if engine.ctr is not None:
        ctr_state = {
            str(ad_id): [
                engine.ctr.impressions_of(ad_id),
                engine.ctr.clicks_of(ad_id),
            ]
            for ad_id in engine.ctr.observed_ads()
        }

    from repro.io.serialize import ad_to_dict

    payload = {
        "version": _FORMAT_VERSION,
        "clock": services.clock.now,
        "next_msg_id": engine._next_msg_id,
        "launched_ads": [ad_to_dict(ad) for ad in engine._launched_ads],
        "retired": sorted(
            ad_id
            for ad_id in (ad.ad_id for ad in engine.corpus.all_ads())
            if not engine.corpus.is_active(ad_id)
        ),
        "budgets": budgets,
        "users": users,
        "profiles": profiles,
        "ctr": ctr_state,
        "stats": {
            "posts": engine.stats.posts,
            "deliveries": engine.stats.deliveries,
            "impressions": engine.stats.impressions,
            "revenue": engine.stats.revenue,
            "deliveries_shed": engine.stats.deliveries_shed,
            "deliveries_degraded": engine.stats.deliveries_degraded,
            "revenue_shed_upper_bound": engine.stats.revenue_shed_upper_bound,
        },
        # QoS control-plane state (ladder position, hysteresis streaks,
        # admission bucket) so a restored engine resumes on the same rung.
        "qos": (
            services.qos.state_dict() if services.qos is not None else None
        ),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_checkpoint(path: Path | str, engine: AdEngine) -> None:
    """Restore a checkpoint into a *freshly constructed* engine.

    The engine must have been built over the same corpus/graph/vectorizer
    the checkpointed one used, and must not have processed any events yet.
    """
    if engine.stats.posts != 0:
        raise ConfigError("restore target must be a fresh engine")
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != _FORMAT_VERSION:
        raise ConfigError(
            f"unsupported checkpoint version: {payload.get('version')!r}"
        )

    from repro.io.serialize import ad_from_dict

    services = engine.services
    services.clock.advance_to(payload["clock"])
    engine._next_msg_id = payload["next_msg_id"]

    for raw in payload.get("launched_ads", ()):
        ad = ad_from_dict(raw)
        if ad.ad_id not in engine.corpus:
            engine.corpus.add(ad)
            engine._launched_ads.append(ad)

    for ad_id in payload["retired"]:
        if engine.corpus.is_active(ad_id):
            engine.corpus.retire(ad_id)

    for ad_id_str, spent in payload["budgets"].items():
        state = engine.budget.state(int(ad_id_str))
        if state is None:
            raise ConfigError(
                f"checkpoint charges ad {ad_id_str} but it has no budget"
            )
        state.spent = spent

    for user_id_str, record in payload["users"].items():
        user_id = int(user_id_str)
        engine.register_user(user_id)
        state = services.users.state(user_id)
        if "location" in record:
            lat, lon = record["location"]
            state.location = GeoPoint(lat, lon)
        if "context" in record:
            context = services.context_of(state)
            for entry in record["context"]:
                context.add(entry["msg_id"], entry["timestamp"], entry["vec"])
            context.expire(record["context_last_t"])
            context.rebuild()

    for user_id_str, profile_state in payload["profiles"].items():
        profile = engine.profiles.get_or_create(int(user_id_str))
        profile._weights = {
            term: weight for term, weight in profile_state["weights"].items()
        }
        profile._last_t = profile_state["last_t"]
        profile._epoch = profile_state["epoch"]

    if payload["ctr"] is not None:
        if engine.ctr is None:
            raise ConfigError(
                "checkpoint carries CTR state but ctr_feedback is disabled"
            )
        for ad_id_str, (impressions, clicks) in payload["ctr"].items():
            ad_id = int(ad_id_str)
            stats = engine.ctr._stats_for(ad_id)
            stats.impressions = impressions
            stats.clicks = clicks
            engine.ctr._total_impressions += impressions
            engine.ctr._total_clicks += clicks

    saved = payload["stats"]
    engine.stats.posts = saved["posts"]
    engine.stats.deliveries = saved["deliveries"]
    engine.stats.impressions = saved["impressions"]
    engine.stats.revenue = saved["revenue"]
    engine.stats.deliveries_shed = saved.get("deliveries_shed", 0)
    engine.stats.deliveries_degraded = saved.get("deliveries_degraded", 0)
    engine.stats.revenue_shed_upper_bound = saved.get(
        "revenue_shed_upper_bound", 0.0
    )

    qos_state = payload.get("qos")
    if qos_state is not None:
        if services.qos is None:
            raise ConfigError(
                "checkpoint carries QoS state but the restore target has "
                "no QoS controller attached"
            )
        services.qos.load_state(qos_state)
