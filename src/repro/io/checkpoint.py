"""Engine checkpointing: persist and restore a live engine's mutable state.

A production matcher is a long-running stateful service; restarts must not
forget budgets (advertisers would be double-charged), profiles, feed
contexts or CTR evidence. A checkpoint captures every piece of mutable
state the engine owns:

* the clock and message-id counter;
* retired-ad set (budget exhaustions and ended campaigns);
* budget spend per capped ad;
* per-user locations, interest profiles (raw weights + timestamps) and
  feed-context windows (raw entries — the decayed aggregate is rebuilt);
* CTR impression/click counts when feedback is on.

The *immutable* inputs (corpus of ads, graph, vectorizer, config) are the
caller's to reconstruct — typically from a saved workload — mirroring how
real deployments separate config/catalog stores from runtime state.

The module is layered so the cluster routers can reuse it:

* :func:`engine_state_dict` / :func:`apply_engine_state` are the pure
  state layer (no file IO) — the multiprocess backend ships these dicts
  over its RPC channel;
* :func:`merge_shard_states` folds per-shard state dicts into one
  *logical* single-engine checkpoint (clock = max, budgets/CTR sum,
  profiles and contexts taken from each user's home shard), which is why
  a cluster checkpoint can be restored into a cluster with a *different*
  shard count — or into a single engine — and continue byte-identically;
* :func:`save_checkpoint` / :func:`load_checkpoint` wrap the state layer
  in one JSON file for the single-engine workflow.

Restore is validated end-to-end by tests: a restored engine produces
bit-identical slates to the original for the remainder of the stream.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.core.engine import AdEngine
from repro.errors import ConfigError
from repro.geo.point import GeoPoint
from repro.profiles.context import FeedContext

_FORMAT_VERSION = 1


def _profile_state(profile) -> dict[str, Any]:
    return {
        "weights": profile._weights,
        "last_t": profile._last_t,
        "epoch": profile._epoch,
    }


def _context_state(context: FeedContext) -> list[dict[str, Any]]:
    return [
        {"msg_id": entry.msg_id, "timestamp": entry.timestamp, "vec": dict(entry.vec)}
        for entry in context._entries
    ]


def engine_state_dict(engine: AdEngine) -> dict[str, Any]:
    """The engine's mutable state as one JSON-safe dictionary.

    All mutable state hangs off the engine's
    :class:`~repro.core.services.EngineServices` (clock, user states,
    profiles, budgets, CTR evidence); the facade itself only adds the
    message-id counter and the launched-ad replay list.
    """
    services = engine.services
    users: dict[str, Any] = {}
    for user_id, state in services.users.items():
        record: dict[str, Any] = {}
        if state.location is not None:
            record["location"] = [state.location.lat, state.location.lon]
        if state.context is not None and len(state.context):
            record["context"] = _context_state(state.context)
            record["context_last_t"] = state.context.last_update
        users[str(user_id)] = record

    profiles: dict[str, Any] = {}
    for user_id in engine.profiles.users():
        profile = engine.profiles.get_or_create(user_id)
        if not profile.is_empty:
            profiles[str(user_id)] = _profile_state(profile)

    budgets = {
        str(ad_id): state.spent
        for ad_id, state in engine.budget._states.items()
        if state.spent > 0.0
    }

    ctr_state: dict[str, Any] | None = None
    if engine.ctr is not None:
        ctr_state = {
            str(ad_id): [
                engine.ctr.impressions_of(ad_id),
                engine.ctr.clicks_of(ad_id),
            ]
            for ad_id in engine.ctr.observed_ads()
        }

    from repro.io.serialize import ad_to_dict

    return {
        "version": _FORMAT_VERSION,
        "clock": services.clock.now,
        "next_msg_id": engine._next_msg_id,
        "launched_ads": [ad_to_dict(ad) for ad in engine._launched_ads],
        "retired": sorted(
            ad_id
            for ad_id in (ad.ad_id for ad in engine.corpus.all_ads())
            if not engine.corpus.is_active(ad_id)
        ),
        "budgets": budgets,
        "users": users,
        "profiles": profiles,
        "ctr": ctr_state,
        "stats": {
            "posts": engine.stats.posts,
            "deliveries": engine.stats.deliveries,
            "impressions": engine.stats.impressions,
            "revenue": engine.stats.revenue,
            "deliveries_shed": engine.stats.deliveries_shed,
            "deliveries_degraded": engine.stats.deliveries_degraded,
            "revenue_shed_upper_bound": engine.stats.revenue_shed_upper_bound,
        },
        # QoS control-plane state (ladder position, hysteresis streaks,
        # admission bucket) so a restored engine resumes on the same rung.
        "qos": (
            services.qos.state_dict() if services.qos is not None else None
        ),
        # LinUCB learner state: the epoch snapshot (replicated cluster-wide)
        # plus the open epoch's pending updates and click contexts.
        "learn": (
            services.learner.state_dict()
            if services.learner is not None
            else None
        ),
    }


def apply_engine_state(
    engine: AdEngine, payload: dict[str, Any], *, include_stats: bool = True
) -> None:
    """Apply a state dictionary to a *freshly constructed* engine.

    The engine must have been built over the same corpus/graph/vectorizer
    the checkpointed one used, and must not have processed any events yet.
    ``include_stats=False`` restores serving state without the cumulative
    counters — the cluster routers use it and keep the checkpoint's totals
    as a router-side baseline instead, so per-shard counters keep counting
    from zero while cluster roll-ups stay continuous.
    """
    if engine.stats.posts != 0:
        raise ConfigError("restore target must be a fresh engine")
    if payload.get("version") != _FORMAT_VERSION:
        raise ConfigError(
            f"unsupported checkpoint version: {payload.get('version')!r}"
        )

    from repro.io.serialize import ad_from_dict

    services = engine.services
    services.clock.advance_to(payload["clock"])
    engine._next_msg_id = payload["next_msg_id"]

    for raw in payload.get("launched_ads", ()):
        ad = ad_from_dict(raw)
        if ad.ad_id not in engine.corpus:
            engine.corpus.add(ad)
            engine._launched_ads.append(ad)

    for ad_id in payload["retired"]:
        if engine.corpus.is_active(ad_id):
            engine.corpus.retire(ad_id)

    for ad_id_str, spent in payload["budgets"].items():
        ad_id = int(ad_id_str)
        if engine.budget.state(ad_id) is None:
            raise ConfigError(
                f"checkpoint charges ad {ad_id_str} but it has no budget"
            )
        engine.budget.restore_spend(ad_id, spent)

    for user_id_str, record in payload["users"].items():
        user_id = int(user_id_str)
        engine.register_user(user_id)
        state = services.users.state(user_id)
        if "location" in record:
            lat, lon = record["location"]
            state.location = GeoPoint(lat, lon)
        if "context" in record:
            context = services.context_of(state)
            for entry in record["context"]:
                context.add(entry["msg_id"], entry["timestamp"], entry["vec"])
            context.expire(record["context_last_t"])
            context.rebuild()

    for user_id_str, profile_state in payload["profiles"].items():
        profile = engine.profiles.get_or_create(int(user_id_str))
        profile._weights = {
            term: weight for term, weight in profile_state["weights"].items()
        }
        profile._last_t = profile_state["last_t"]
        profile._epoch = profile_state["epoch"]

    if payload["ctr"] is not None:
        if engine.ctr is None:
            raise ConfigError(
                "checkpoint carries CTR state but ctr_feedback is disabled"
            )
        for ad_id_str, (impressions, clicks) in payload["ctr"].items():
            ad_id = int(ad_id_str)
            stats = engine.ctr._stats_for(ad_id)
            stats.impressions = impressions
            stats.clicks = clicks
            engine.ctr._total_impressions += impressions
            engine.ctr._total_clicks += clicks

    if include_stats:
        saved = payload["stats"]
        engine.stats.posts = saved["posts"]
        engine.stats.deliveries = saved["deliveries"]
        engine.stats.impressions = saved["impressions"]
        engine.stats.revenue = saved["revenue"]
        engine.stats.deliveries_shed = saved.get("deliveries_shed", 0)
        engine.stats.deliveries_degraded = saved.get("deliveries_degraded", 0)
        engine.stats.revenue_shed_upper_bound = saved.get(
            "revenue_shed_upper_bound", 0.0
        )

    qos_state = payload.get("qos")
    if qos_state is not None:
        if services.qos is None:
            raise ConfigError(
                "checkpoint carries QoS state but the restore target has "
                "no QoS controller attached"
            )
        services.qos.load_state(qos_state)

    learn_state = payload.get("learn")
    if learn_state is not None:
        if services.learner is None:
            raise ConfigError(
                "checkpoint carries LinUCB learner state but the restore "
                "target has personalize != 'linucb'"
            )
        services.learner.load_state(learn_state)


def merge_shard_states(
    states: Sequence[dict[str, Any]],
    shard_of: Callable[[int], int],
    *,
    posts_routed: int,
    qos_state: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Fold per-shard state dicts into one *logical* single-engine payload.

    The merge relies on the routing invariants of the user-sharded
    deployment: every shard that a user's posts touch includes the user's
    home shard, so the home shard's copy of a profile (and the only copy
    of a feed context) is exactly the single-engine state; budgets and CTR
    evidence are disjoint per delivering shard and sum losslessly; the
    clock is the max watermark any shard reached. ``posts_routed`` is the
    router's own post count — per-shard ``posts`` counters double-count
    fan-out amplification and cannot be summed.

    The result is shard-count-agnostic: it can be applied to a single
    engine or redistributed across any number of shards.
    """
    if not states:
        raise ConfigError("cannot merge an empty shard state list")
    for state in states:
        if state.get("version") != _FORMAT_VERSION:
            raise ConfigError(
                f"unsupported checkpoint version: {state.get('version')!r}"
            )

    budgets: dict[str, float] = {}
    retired: set[int] = set()
    launched: list[dict[str, Any]] = []
    ctr: dict[str, list[float]] | None = None
    users: dict[str, dict[str, Any]] = {}
    profiles: dict[str, dict[str, Any]] = {}
    stat_sums: dict[str, float] = {}

    for shard, state in enumerate(states):
        retired.update(state["retired"])
        if len(state.get("launched_ads", ())) > len(launched):
            # Launches are broadcast, so every shard carries the same
            # replay list; the longest copy survives a partial broadcast.
            launched = list(state["launched_ads"])
        for ad_id, spent in state["budgets"].items():
            budgets[ad_id] = budgets.get(ad_id, 0.0) + spent
        if state["ctr"] is not None:
            if ctr is None:
                ctr = {}
            for ad_id, (impressions, clicks) in state["ctr"].items():
                entry = ctr.setdefault(ad_id, [0, 0])
                # Impressions are partitioned state (each shard serves its
                # own residents) and sum; clicks are broadcast to every
                # shard, so the max — not the sum — is the logical count.
                entry[0] += impressions
                entry[1] = max(entry[1], clicks)
        for name, value in state["stats"].items():
            stat_sums[name] = stat_sums.get(name, 0) + value

        for user_id_str, record in state["users"].items():
            home = shard_of(int(user_id_str))
            merged = users.setdefault(user_id_str, {})
            if "location" in record and "location" not in merged:
                merged["location"] = record["location"]
            if home == shard and "context" in record:
                merged["context"] = record["context"]
                merged["context_last_t"] = record["context_last_t"]
        for user_id_str, profile_state in state["profiles"].items():
            home = shard_of(int(user_id_str))
            current = profiles.get(user_id_str)
            if home == shard or current is None:
                # Home shard wins (it saw every one of the user's posts);
                # otherwise keep the most-advanced replica as a fallback.
                if (
                    home == shard
                    or current is None
                    or profile_state["epoch"] > current["epoch"]
                ):
                    profiles[user_id_str] = profile_state

    from repro.learn.linucb import merge_learn_states

    stats = {name: value for name, value in stat_sums.items()}
    stats["posts"] = posts_routed
    return {
        "version": _FORMAT_VERSION,
        "clock": max(state["clock"] for state in states),
        "next_msg_id": max(state["next_msg_id"] for state in states),
        "launched_ads": launched,
        "retired": sorted(retired),
        "budgets": budgets,
        "users": users,
        "profiles": profiles,
        "ctr": ctr,
        "stats": stats,
        "qos": qos_state,
        # Snapshots are replicated (every shard folds the same sorted
        # record list each epoch), so the first shard's models stand for
        # all; the open epoch's pending/contexts concatenate (they live
        # only on each follower's home shard) into canonical order.
        "learn": merge_learn_states([state.get("learn") for state in states]),
    }


def save_state_dict(path: Path | str, payload: dict[str, Any]) -> None:
    """Write one state dictionary (engine- or cluster-level) as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_state_dict(path: Path | str) -> dict[str, Any]:
    """Read a state dictionary saved by :func:`save_state_dict`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def save_checkpoint(path: Path | str, engine: AdEngine) -> None:
    """Serialise the engine's mutable state to one JSON file."""
    save_state_dict(path, engine_state_dict(engine))


def load_checkpoint(path: Path | str, engine: AdEngine) -> None:
    """Restore a checkpoint file into a *freshly constructed* engine."""
    apply_engine_state(engine, load_state_dict(path))
