"""JSONL persistence for the workload's building blocks.

Formats are line-oriented JSON so files diff cleanly, stream through
standard tools, and survive partial reads. A workload directory contains::

    workload/
      meta.json       # config + topic assignments
      ads.jsonl       # one ad per line
      users.jsonl     # one user per line
      posts.jsonl     # one post per line
      checkins.jsonl  # one check-in per line
      graph.jsonl     # one {"user": u, "follows": [...]} per line

``load_workload`` reconstructs a fully functional
:class:`~repro.datagen.workload.Workload` — including the fitted
vectorizer (refit deterministically from the saved text) and the
generative ground truth (from the saved latent assignments).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.ads.ad import Ad
from repro.ads.targeting import TargetingSpec, TimeWindow
from repro.datagen.topicspace import TopicSpace
from repro.datagen.users import UserRecord
from repro.datagen.workload import Workload, WorkloadConfig
from repro.errors import ConfigError
from repro.geo.point import GeoPoint
from repro.geo.regions import city_by_name
from repro.graph.social import SocialGraph
from repro.stream.events import Checkin, Post
from repro.text.tokenizer import Tokenizer
from repro.text.vectorizer import TfidfVectorizer


# -- primitives -------------------------------------------------------------


def _point_to_list(point: GeoPoint | None) -> list[float] | None:
    if point is None:
        return None
    return [point.lat, point.lon]


def _point_from_list(raw: list[float] | None) -> GeoPoint | None:
    if raw is None:
        return None
    return GeoPoint(raw[0], raw[1])


# -- ads ------------------------------------------------------------------------


def ad_to_dict(ad: Ad) -> dict[str, Any]:
    """One ad as a JSON-safe dictionary."""
    targeting = ad.targeting
    return {
        "ad_id": ad.ad_id,
        "advertiser": ad.advertiser,
        "text": ad.text,
        "terms": ad.terms,
        "bid": ad.bid,
        "budget": ad.budget,
        "circles": [
            [center.lat, center.lon, radius] for center, radius in targeting.circles
        ],
        "time_windows": [
            [window.start_hour, window.end_hour] for window in targeting.time_windows
        ],
    }


def ad_from_dict(raw: dict[str, Any]) -> Ad:
    """Inverse of :func:`ad_to_dict`."""
    try:
        targeting = TargetingSpec(
            circles=tuple(
                (GeoPoint(lat, lon), radius) for lat, lon, radius in raw["circles"]
            ),
            time_windows=tuple(
                TimeWindow(start, end) for start, end in raw["time_windows"]
            ),
        )
        return Ad(
            ad_id=raw["ad_id"],
            advertiser=raw["advertiser"],
            text=raw["text"],
            terms=dict(raw["terms"]),
            bid=raw["bid"],
            budget=raw["budget"],
            targeting=targeting,
        )
    except KeyError as missing:
        raise ConfigError(f"ad record missing field: {missing}") from missing


def save_ads(path: Path | str, ads: list[Ad]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for ad in ads:
            handle.write(json.dumps(ad_to_dict(ad)) + "\n")


def load_ads(path: Path | str) -> list[Ad]:
    ads: list[Ad] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                ads.append(ad_from_dict(json.loads(line)))
    return ads


# -- posts / check-ins -----------------------------------------------------------


def post_to_dict(post: Post) -> dict[str, Any]:
    return {
        "msg_id": post.msg_id,
        "author_id": post.author_id,
        "text": post.text,
        "timestamp": post.timestamp,
    }


def post_from_dict(raw: dict[str, Any]) -> Post:
    try:
        return Post(
            msg_id=raw["msg_id"],
            author_id=raw["author_id"],
            text=raw["text"],
            timestamp=raw["timestamp"],
        )
    except KeyError as missing:
        raise ConfigError(f"post record missing field: {missing}") from missing


def save_posts(path: Path | str, posts: list[Post]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for post in posts:
            handle.write(json.dumps(post_to_dict(post)) + "\n")


def load_posts(path: Path | str) -> list[Post]:
    posts: list[Post] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                posts.append(post_from_dict(json.loads(line)))
    return posts


# -- graph --------------------------------------------------------------------------


def save_graph(path: Path | str, graph: SocialGraph) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for user in graph.users():
            record = {"user": user, "follows": sorted(graph.followees(user))}
            handle.write(json.dumps(record) + "\n")


def load_graph(path: Path | str) -> SocialGraph:
    graph = SocialGraph()
    records: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                record = json.loads(line)
                records.append(record)
                graph.add_user(record["user"])
    for record in records:
        for followee in record["follows"]:
            graph.follow(record["user"], followee)
    return graph


# -- whole workloads -----------------------------------------------------------------


def save_workload(directory: Path | str, workload: Workload) -> None:
    """Persist a workload to a directory (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_ads(directory / "ads.jsonl", workload.ads)
    save_posts(directory / "posts.jsonl", workload.posts)
    save_graph(directory / "graph.jsonl", workload.graph)
    with open(directory / "users.jsonl", "w", encoding="utf-8") as handle:
        for user in workload.users:
            handle.write(
                json.dumps(
                    {
                        "user_id": user.user_id,
                        "mixture": list(user.mixture),
                        "home": _point_to_list(user.home),
                        "city": user.city.name,
                        "activity": user.activity,
                    }
                )
                + "\n"
            )
    with open(directory / "checkins.jsonl", "w", encoding="utf-8") as handle:
        for checkin in workload.checkins:
            handle.write(
                json.dumps(
                    {
                        "user_id": checkin.user_id,
                        "point": _point_to_list(checkin.point),
                        "timestamp": checkin.timestamp,
                    }
                )
                + "\n"
            )
    meta = {
        "config": {
            field: getattr(workload.config, field)
            for field in WorkloadConfig.__dataclass_fields__
        },
        "ad_topics": workload.ad_topics,
        "post_topics": workload.post_topics,
    }
    with open(directory / "meta.json", "w", encoding="utf-8") as handle:
        json.dump(meta, handle)


def load_workload(directory: Path | str) -> Workload:
    """Reconstruct a workload saved by :func:`save_workload`."""
    directory = Path(directory)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise ConfigError(f"not a workload directory (no meta.json): {directory}")
    with open(meta_path, encoding="utf-8") as handle:
        meta = json.load(handle)
    raw_config = dict(meta["config"])
    if isinstance(raw_config.get("budget_range"), list):
        raw_config["budget_range"] = tuple(raw_config["budget_range"])
    config = WorkloadConfig(**raw_config)

    ads = load_ads(directory / "ads.jsonl")
    posts = load_posts(directory / "posts.jsonl")
    graph = load_graph(directory / "graph.jsonl")

    users: list[UserRecord] = []
    with open(directory / "users.jsonl", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            users.append(
                UserRecord(
                    user_id=record["user_id"],
                    mixture=tuple(record["mixture"]),
                    home=_point_from_list(record["home"]),
                    city=city_by_name(record["city"]),
                    activity=record["activity"],
                )
            )
    checkins: list[Checkin] = []
    with open(directory / "checkins.jsonl", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            checkins.append(
                Checkin(
                    user_id=record["user_id"],
                    point=_point_from_list(record["point"]),
                    timestamp=record["timestamp"],
                )
            )

    tokenizer = Tokenizer()
    vectorizer = TfidfVectorizer()
    vectorizer.fit(tokenizer.tokenize(post.text) for post in posts)
    vectorizer.fit(tokenizer.tokenize(ad.text) for ad in ads)

    return Workload(
        config=config,
        topic_space=TopicSpace(config.num_topics, config.vocab_size),
        users=users,
        graph=graph,
        ads=ads,
        ad_topics={int(key): value for key, value in meta["ad_topics"].items()},
        posts=posts,
        post_topics={int(key): value for key, value in meta["post_topics"].items()},
        checkins=checkins,
        tokenizer=tokenizer,
        vectorizer=vectorizer,
    )
