"""Persistence: JSONL serialisation for ads, graphs, traces and workloads."""

from repro.io.serialize import (
    ad_from_dict,
    ad_to_dict,
    load_ads,
    load_graph,
    load_posts,
    load_workload,
    post_from_dict,
    post_to_dict,
    save_ads,
    save_graph,
    save_posts,
    save_workload,
)

__all__ = [
    "ad_from_dict",
    "ad_to_dict",
    "load_ads",
    "load_graph",
    "load_posts",
    "load_workload",
    "post_from_dict",
    "post_to_dict",
    "save_ads",
    "save_graph",
    "save_posts",
    "save_workload",
]
