"""Composable adversarial workload scenarios.

The datagen layer emits a well-behaved Zipf + diurnal stream; production
feeds see worse. This module defines the *scripted event* model the
scenario suite is built on: a small union of frozen event records — posts,
check-ins, click intents, campaign launches and endings — that a seeded
generator emits over an existing workload's stream and a driver replays
against any engine backend (single, in-process sharded, multiprocess).

Every event type is plain data, so a generated stream can be captured to
a versioned JSONL trace (:mod:`repro.scenarios.trace`) and replayed
byte-identically later. Click events are *intents* — "this user clicks
the top ``max_slots`` ads of whatever slate message ``msg_id`` delivered
to them" — because the concrete ad ids depend on the engine under test;
since slates are byte-identical across backends (the differential suites
prove it), resolving intents at drive time keeps replays deterministic
without baking one engine's output into the trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Union

from repro.errors import ConfigError, StreamError

if TYPE_CHECKING:
    from repro.datagen.workload import Workload
    from repro.stream.events import Post

#: Version stamp of the scripted-event model; the JSONL trace format
#: carries it so readers can reject streams from a different schema.
TRACE_VERSION = 1

#: Scenario posts get msg ids from per-scenario blocks far above any
#: workload's own stream, so ids never collide under composition.
SCENARIO_MSG_BASE = 1_000_000
SCENARIO_MSG_BLOCK = 100_000

#: Launched campaign clones likewise get per-scenario ad-id blocks
#: (below the soak driver's 900_000 range so the two can coexist).
SCENARIO_AD_BASE = 800_000
SCENARIO_AD_BLOCK = 10_000


@dataclass(frozen=True, slots=True)
class ScriptedPost:
    """A scenario-authored message entering the feed."""

    timestamp: float
    msg_id: int
    author_id: int
    text: str


@dataclass(frozen=True, slots=True)
class ScriptedCheckin:
    """A scenario-scripted location ping."""

    timestamp: float
    user_id: int
    lat: float
    lon: float


@dataclass(frozen=True, slots=True)
class ScriptedClick:
    """A click intent: the user clicks the top ``max_slots`` ads of the
    slate that message ``msg_id`` delivered to them (skipped if the
    delivery never happened — e.g. admission shed it)."""

    timestamp: float
    user_id: int
    msg_id: int
    max_slots: int


@dataclass(frozen=True, slots=True)
class ScriptedLaunch:
    """Launch a clone of an existing workload ad with overridden
    economics. Cloning by ``template_ad_id`` keeps traces compact and
    portable: targeting and term vectors come from the workload."""

    timestamp: float
    ad_id: int
    template_ad_id: int
    bid: float
    budget: float | None


@dataclass(frozen=True, slots=True)
class ScriptedEnd:
    """End a campaign early (idempotent at the engine)."""

    timestamp: float
    ad_id: int


ScenarioEvent = Union[
    ScriptedPost, ScriptedCheckin, ScriptedClick, ScriptedLaunch, ScriptedEnd
]


@dataclass
class ScenarioContext:
    """Everything a generator may draw from, with its private id blocks.

    ``rng`` is derived from the suite seed and the scenario's slot in the
    composition, so two scenarios in one stream never share draws and the
    whole stream regenerates bit-identically from ``(names, seed)``.
    """

    workload: "Workload"
    base_posts: "list[Post]"
    start: float
    end: float
    rng: random.Random
    msg_base: int
    ad_base: int

    @property
    def span(self) -> float:
        return max(self.end - self.start, 1e-6)

    def pick_window(self, fraction: float, *, floor_s: float = 60.0) -> tuple[float, float]:
        """A random (start, length) window covering ``fraction`` of the
        stream span, placed away from the extreme edges."""
        length = max(self.span * fraction, floor_s)
        slack = max(self.span - length, 0.0)
        return self.start + self.rng.uniform(0.05, 0.80) * slack, length


#: A generator takes its context (plus knobs) and returns its events in
#: non-decreasing timestamp order.
ScenarioGenerator = Callable[..., "list[ScenarioEvent]"]


def merge_events(*streams: "list[ScenarioEvent]") -> tuple[ScenarioEvent, ...]:
    """Time-merge scenario streams. ``sorted`` is stable, so ties keep
    the concatenation order (base stream first, then scenario slots) —
    fully deterministic for identical inputs."""
    merged = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda event: event.timestamp)
    return tuple(merged)


def check_stream(events: tuple[ScenarioEvent, ...]) -> None:
    """Structural invariants every composed stream must satisfy."""
    last = float("-inf")
    seen_msgs: set[int] = set()
    seen_launches: set[int] = set()
    for event in events:
        if event.timestamp < last:
            raise StreamError(
                f"scenario stream not time-monotone at t={event.timestamp}"
            )
        last = event.timestamp
        if isinstance(event, ScriptedPost):
            if event.msg_id in seen_msgs:
                raise StreamError(f"duplicate scripted msg_id {event.msg_id}")
            seen_msgs.add(event.msg_id)
        elif isinstance(event, ScriptedLaunch):
            if event.ad_id in seen_launches:
                raise StreamError(f"duplicate scripted launch ad_id {event.ad_id}")
            seen_launches.add(event.ad_id)


def workload_fingerprint(workload: "Workload") -> dict[str, int]:
    """The identity-bearing knobs of the generating workload. Stored in
    every trace header so a replay against a different workload is
    rejected instead of silently producing different totals."""
    config = workload.config
    return {
        "num_users": config.num_users,
        "num_ads": config.num_ads,
        "num_posts": config.num_posts,
        "num_topics": config.num_topics,
        "vocab_size": config.vocab_size,
        "follows_per_user": config.follows_per_user,
        "seed": config.seed,
    }


@dataclass(frozen=True)
class ScenarioStream:
    """One composed, replayable adversarial stream."""

    seed: int
    scenarios: tuple[str, ...]
    workload_fingerprint: dict[str, int]
    events: tuple[ScenarioEvent, ...]
    version: int = TRACE_VERSION

    def counts(self) -> dict[str, int]:
        by_kind: dict[str, int] = {}
        for event in self.events:
            name = type(event).__name__
            by_kind[name] = by_kind.get(name, 0) + 1
        return by_kind


def build_scenario_stream(
    workload: "Workload",
    scenarios,
    *,
    seed: int = 0,
    limit_posts: int | None = None,
    knobs: dict[str, dict] | None = None,
) -> ScenarioStream:
    """Compose the base workload stream with the named adversarial
    scenarios, fully reproducibly from ``seed``.

    ``scenarios`` may be empty (the base stream alone, as scripted
    events). ``knobs`` optionally overrides one scenario's generator
    keyword arguments by name. ``limit_posts`` truncates the *base*
    stream; scenario windows then cover the truncated span.
    """
    from repro.scenarios.generators import SCENARIOS

    names = tuple(scenarios)
    unknown = sorted(set(names) - set(SCENARIOS))
    if unknown:
        raise ConfigError(
            f"unknown scenario(s) {unknown}; known: {sorted(SCENARIOS)}"
        )
    base_posts = list(
        workload.posts if limit_posts is None else workload.posts[:limit_posts]
    )
    if not base_posts:
        raise ConfigError("cannot build a scenario stream over zero base posts")
    base_events: list[ScenarioEvent] = [
        ScriptedPost(post.timestamp, post.msg_id, post.author_id, post.text)
        for post in base_posts
    ]
    start = base_events[0].timestamp
    end = max(base_events[-1].timestamp, start + 1.0)
    streams = [base_events]
    for slot, name in enumerate(names):
        context = ScenarioContext(
            workload=workload,
            base_posts=base_posts,
            start=start,
            end=end,
            # Seeding by string is stable across processes and Python
            # versions (unlike hash()-based mixing).
            rng=random.Random(f"{name}#{slot}:{seed}"),
            msg_base=SCENARIO_MSG_BASE + slot * SCENARIO_MSG_BLOCK,
            ad_base=SCENARIO_AD_BASE + slot * SCENARIO_AD_BLOCK,
        )
        overrides = (knobs or {}).get(name, {})
        streams.append(SCENARIOS[name](context, **overrides))
    events = merge_events(*streams)
    check_stream(events)
    return ScenarioStream(
        seed=seed,
        scenarios=names,
        workload_fingerprint=workload_fingerprint(workload),
        events=events,
    )
