"""Versioned JSONL record/replay traces for scenario streams.

One header line carries the schema version, the suite seed, the scenario
names and the generating workload's fingerprint; every following line is
one scripted event. The encoding is canonical (sorted keys, compact
separators, shortest-round-trip floats), so recording the same stream
twice produces byte-identical files and ``read → write`` reproduces the
original bytes — the property the replay suite pins down.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import TraceError
from repro.scenarios.base import (
    TRACE_VERSION,
    ScenarioEvent,
    ScenarioStream,
    ScriptedCheckin,
    ScriptedClick,
    ScriptedEnd,
    ScriptedLaunch,
    ScriptedPost,
    check_stream,
)


def _encode(event: ScenarioEvent) -> dict:
    if isinstance(event, ScriptedPost):
        return {
            "kind": "post",
            "t": event.timestamp,
            "msg": event.msg_id,
            "author": event.author_id,
            "text": event.text,
        }
    if isinstance(event, ScriptedCheckin):
        return {
            "kind": "checkin",
            "t": event.timestamp,
            "user": event.user_id,
            "lat": event.lat,
            "lon": event.lon,
        }
    if isinstance(event, ScriptedClick):
        return {
            "kind": "click",
            "t": event.timestamp,
            "user": event.user_id,
            "msg": event.msg_id,
            "slots": event.max_slots,
        }
    if isinstance(event, ScriptedLaunch):
        return {
            "kind": "launch",
            "t": event.timestamp,
            "ad": event.ad_id,
            "template": event.template_ad_id,
            "bid": event.bid,
            "budget": event.budget,
        }
    if isinstance(event, ScriptedEnd):
        return {"kind": "end", "t": event.timestamp, "ad": event.ad_id}
    raise TraceError(f"cannot encode event of type {type(event).__name__}")


def _decode(record: dict) -> ScenarioEvent:
    kind = record.get("kind")
    try:
        if kind == "post":
            return ScriptedPost(
                record["t"], record["msg"], record["author"], record["text"]
            )
        if kind == "checkin":
            return ScriptedCheckin(
                record["t"], record["user"], record["lat"], record["lon"]
            )
        if kind == "click":
            return ScriptedClick(
                record["t"], record["user"], record["msg"], record["slots"]
            )
        if kind == "launch":
            return ScriptedLaunch(
                record["t"],
                record["ad"],
                record["template"],
                record["bid"],
                record["budget"],
            )
        if kind == "end":
            return ScriptedEnd(record["t"], record["ad"])
    except KeyError as error:
        raise TraceError(
            f"trace event of kind {kind!r} is missing field {error}"
        ) from error
    raise TraceError(f"unknown trace event kind {kind!r}")


def _dumps(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def render_trace(stream: ScenarioStream) -> str:
    """The canonical trace text for a stream (what :func:`write_trace`
    puts on disk)."""
    lines = [
        _dumps(
            {
                "record": "header",
                "version": stream.version,
                "seed": stream.seed,
                "scenarios": list(stream.scenarios),
                "workload": stream.workload_fingerprint,
                "events": len(stream.events),
            }
        )
    ]
    lines.extend(
        _dumps({"record": "event", **_encode(event)}) for event in stream.events
    )
    return "\n".join(lines) + "\n"


def write_trace(path: Path | str, stream: ScenarioStream) -> int:
    """Record a scenario stream; returns the number of events written."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_trace(stream), encoding="utf-8")
    return len(stream.events)


def read_trace(path: Path | str) -> ScenarioStream:
    """Load a recorded stream, validating version, shape and count."""
    source = Path(path)
    if not source.exists():
        raise TraceError(f"no trace file at {source}")
    events: list[ScenarioEvent] = []
    header: dict | None = None
    with source.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceError(
                    f"{source}:{line_no}: not valid JSON ({error})"
                ) from error
            if not isinstance(record, dict):
                raise TraceError(f"{source}:{line_no}: expected an object")
            if header is None:
                if record.get("record") != "header":
                    raise TraceError(
                        f"{source}: first line must be the trace header"
                    )
                if record.get("version") != TRACE_VERSION:
                    raise TraceError(
                        f"{source}: unsupported trace version "
                        f"{record.get('version')!r} (this build reads "
                        f"{TRACE_VERSION})"
                    )
                header = record
                continue
            if record.get("record") != "event":
                raise TraceError(
                    f"{source}:{line_no}: unexpected record "
                    f"{record.get('record')!r}"
                )
            events.append(_decode(record))
    if header is None:
        raise TraceError(f"{source}: empty trace (no header line)")
    if len(events) != header.get("events"):
        raise TraceError(
            f"{source}: header promises {header.get('events')} events, "
            f"found {len(events)} (truncated trace?)"
        )
    stream = ScenarioStream(
        seed=header["seed"],
        scenarios=tuple(header["scenarios"]),
        workload_fingerprint=dict(header["workload"]),
        events=tuple(events),
        version=header["version"],
    )
    check_stream(stream.events)
    return stream
