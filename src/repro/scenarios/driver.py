"""Drive a scripted scenario stream through any engine backend.

The driver is backend-agnostic: it speaks only the surface the single
:class:`~repro.core.engine.AdEngine`, the in-process
:class:`~repro.cluster.sharded.ShardedEngine` router and the
multiprocess :class:`~repro.cluster.procpool.ProcessShardedEngine` pool
all share — ``post`` / ``checkin`` / ``launch_campaign`` /
``end_campaign`` / ``record_click``. Click intents resolve against the
slates the engine actually served (collected from each post's result),
so a shed or degraded delivery deterministically suppresses its bot
clicks, and byte-identical slates across backends imply byte-identical
click streams.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import TYPE_CHECKING, Callable

from repro.errors import StreamError
from repro.geo.point import GeoPoint
from repro.scenarios.base import (
    ScenarioEvent,
    ScriptedCheckin,
    ScriptedClick,
    ScriptedEnd,
    ScriptedLaunch,
    ScriptedPost,
)

if TYPE_CHECKING:
    from repro.datagen.workload import Workload

#: ``on_interval(stream_now, wall_seconds_since_last_tick)`` — the same
#: shape the feed simulator's sampling hook uses.
IntervalHook = Callable[[float, float], None]


@dataclass
class ScenarioTotals:
    """The books of one driven stream.

    ``posts``/``deliveries``/``impressions``/``revenue`` are the delivery
    totals the replay contract is stated over: a recorded trace replayed
    on the same backend must reproduce them byte-identically.
    """

    posts: int = 0
    deliveries: int = 0
    impressions: int = 0
    revenue: float = 0.0
    shed: int = 0
    degraded: int = 0
    clicks: int = 0
    clicks_skipped: int = 0
    launches: int = 0
    ends: int = 0
    checkins: int = 0
    wall_seconds: float = 0.0

    def canonical(self) -> str:
        """One parseable line of the replay-contract totals. ``revenue``
        uses full repr so equality is bit-exact, not display-rounded."""
        return (
            f"posts={self.posts} deliveries={self.deliveries} "
            f"impressions={self.impressions} revenue={self.revenue!r}"
        )

    def rows(self) -> list[list[object]]:
        return [
            ["posts", self.posts],
            ["deliveries", self.deliveries],
            ["impressions", self.impressions],
            ["revenue", round(self.revenue, 4)],
            ["deliveries shed", self.shed],
            ["deliveries degraded", self.degraded],
            ["clicks resolved", self.clicks],
            ["click intents skipped", self.clicks_skipped],
            ["campaign launches", self.launches],
            ["campaign ends", self.ends],
            ["checkins", self.checkins],
        ]


@dataclass
class ScenarioDriver:
    """Replays scripted events against one engine.

    ``on_result(msg_id, results)`` fires after every post with the
    scripted msg id and the backend's (normalised) list of
    :class:`~repro.core.engine.PostResult`; ``on_click(user_id, ad_id,
    slot_index)`` after every resolved click — the canary harness uses
    both for per-arm attribution. ``slate_cache_msgs`` bounds the
    click-join memory: intents arriving more than that many posts after
    their message are counted as skipped (deterministically).
    """

    engine: object
    workload: "Workload"
    slate_cache_msgs: int = 512
    on_result: Callable | None = None
    on_click: Callable | None = None
    post_latencies: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._templates = {ad.ad_id: ad for ad in self.workload.ads}

    def run(
        self,
        events,
        *,
        interval_s: float | None = None,
        on_interval: IntervalHook | None = None,
    ) -> ScenarioTotals:
        totals = ScenarioTotals()
        slates: OrderedDict[int, dict[int, tuple]] = OrderedDict()
        next_tick: float | None = None
        tick_wall = perf_counter()
        started = tick_wall
        for event in events:
            if interval_s is not None and on_interval is not None:
                if next_tick is None:
                    next_tick = event.timestamp + interval_s
                while event.timestamp >= next_tick:
                    now_wall = perf_counter()
                    on_interval(next_tick, now_wall - tick_wall)
                    tick_wall = now_wall
                    next_tick += interval_s
            self._dispatch(event, totals, slates)
        if next_tick is not None and on_interval is not None:
            # Tail tick: flush the last partial interval, like the feed
            # simulator does.
            on_interval(next_tick, perf_counter() - tick_wall)
        totals.wall_seconds = perf_counter() - started
        return totals

    def _dispatch(
        self,
        event: ScenarioEvent,
        totals: ScenarioTotals,
        slates: OrderedDict,
    ) -> None:
        engine = self.engine
        if isinstance(event, ScriptedPost):
            started = perf_counter()
            result = engine.post(event.author_id, event.text, event.timestamp)
            self.post_latencies.append(perf_counter() - started)
            results = result if isinstance(result, list) else [result]
            totals.posts += 1
            delivered: dict[int, tuple] = {}
            for part in results:
                totals.deliveries += part.num_deliveries
                totals.impressions += part.num_impressions
                totals.revenue += part.revenue
                totals.shed += part.num_shed
                totals.degraded += part.num_degraded
                for delivery in part.deliveries:
                    if delivery.slate:
                        delivered[delivery.user_id] = delivery.slate
            slates[event.msg_id] = delivered
            while len(slates) > self.slate_cache_msgs:
                slates.popitem(last=False)
            if self.on_result is not None:
                self.on_result(event.msg_id, results)
        elif isinstance(event, ScriptedClick):
            slate = slates.get(event.msg_id, {}).get(event.user_id)
            if not slate:
                totals.clicks_skipped += 1
                return
            for slot, scored in enumerate(slate[: event.max_slots]):
                engine.record_click(
                    scored.ad_id, user_id=event.user_id, slot_index=slot
                )
                totals.clicks += 1
                if self.on_click is not None:
                    self.on_click(event.user_id, scored.ad_id, slot)
        elif isinstance(event, ScriptedCheckin):
            engine.checkin(
                event.user_id, GeoPoint(event.lat, event.lon), event.timestamp
            )
            totals.checkins += 1
        elif isinstance(event, ScriptedLaunch):
            template = self._templates.get(event.template_ad_id)
            if template is None:
                raise StreamError(
                    f"launch references unknown template ad "
                    f"{event.template_ad_id}"
                )
            clone = replace(
                template,
                ad_id=event.ad_id,
                bid=event.bid,
                budget=event.budget,
            )
            engine.launch_campaign(clone, event.timestamp)
            totals.launches += 1
        elif isinstance(event, ScriptedEnd):
            engine.end_campaign(event.ad_id, event.timestamp)
            totals.ends += 1
        else:
            raise StreamError(
                f"driver cannot dispatch event type {type(event).__name__}"
            )
