"""Canary A/B rollout harness over scripted scenario streams.

A deterministic hash assigns a fraction of users to the *canary cohort*.
The harness then drives **two** engines — control config and treatment
config — with the *same* scripted stream and compares the cohort's
outcomes on each arm. This is a paired counterfactual, not a split
population: every canary user's deliveries exist on both engines, so
with identical configs the diff is exactly zero (the differential suite
pins that down), and with a genuinely different treatment the diff
isolates the config change rather than cohort sampling noise.

The control engine sees the full stream untouched, which gives the
second invariant the differential suite checks: a canary run's control
arm is byte-identical to a plain no-canary run.
"""

from __future__ import annotations

import json
from contextlib import ExitStack
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.config import EngineConfig
from repro.core.engine import AdEngine
from repro.errors import ConfigError
from repro.scenarios.driver import ScenarioDriver, ScenarioTotals
from repro.util.timers import LatencyRecorder

if TYPE_CHECKING:
    from repro.datagen.workload import Workload

#: Engine backends the harness can drive.
BACKENDS = ("single", "sharded", "procpool")


def _splitmix64(value: int) -> int:
    """SplitMix64 finalizer — a strong, dependency-free 64-bit mixer."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def canary_arm(user_id: int, *, fraction: float, seed: int = 0) -> str:
    """Deterministically assign one user to ``"treatment"`` or
    ``"control"``. Stable across processes, Python versions and call
    order — the property the differential suite depends on."""
    if not 0.0 <= fraction <= 1.0:
        raise ConfigError(f"canary fraction must be in [0, 1], got {fraction}")
    bucket = _splitmix64(user_id * 0x1000193 ^ _splitmix64(seed)) % 1_000_000
    return "treatment" if bucket < fraction * 1_000_000 else "control"


def split_users(
    user_ids, *, fraction: float, seed: int = 0
) -> tuple[frozenset[int], frozenset[int]]:
    """Partition user ids into (control, treatment) cohorts."""
    everyone = frozenset(user_ids)
    treatment = frozenset(
        user_id
        for user_id in everyone
        if canary_arm(user_id, fraction=fraction, seed=seed) == "treatment"
    )
    return everyone - treatment, treatment


@dataclass
class ArmMetrics:
    """The canary cohort's outcomes on one engine arm."""

    deliveries: int = 0
    impressions: int = 0
    revenue: float = 0.0
    clicks: int = 0
    shed_posts: int = 0
    p50_ms: float = 0.0
    p99_ms: float = 0.0

    def to_dict(self) -> dict:
        return {
            "deliveries": self.deliveries,
            "impressions": self.impressions,
            "revenue": self.revenue,
            "clicks": self.clicks,
            "shed_posts": self.shed_posts,
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }


@dataclass
class CanaryReport:
    """The rollout verdict and everything behind it."""

    backend: str
    fraction: float
    seed: int
    cohort_size: int
    total_users: int
    control: ArmMetrics
    treatment: ArmMetrics
    control_totals: ScenarioTotals
    treatment_totals: ScenarioTotals
    max_revenue_drop: float
    max_p99_ratio: float | None
    reasons: list[str] = field(default_factory=list)

    @property
    def revenue_diff(self) -> float:
        return self.treatment.revenue - self.control.revenue

    @property
    def revenue_drop_fraction(self) -> float:
        if self.control.revenue <= 0.0:
            return 0.0
        return max(0.0, -self.revenue_diff) / self.control.revenue

    @property
    def p99_ratio(self) -> float | None:
        if self.control.p99_ms <= 0.0:
            return None
        return self.treatment.p99_ms / self.control.p99_ms

    @property
    def verdict(self) -> str:
        return "fail" if self.reasons else "pass"

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "reasons": list(self.reasons),
            "backend": self.backend,
            "fraction": self.fraction,
            "seed": self.seed,
            "cohort_size": self.cohort_size,
            "total_users": self.total_users,
            "revenue_diff": self.revenue_diff,
            "revenue_drop_fraction": self.revenue_drop_fraction,
            "p99_ratio": self.p99_ratio,
            "max_revenue_drop": self.max_revenue_drop,
            "max_p99_ratio": self.max_p99_ratio,
            "control": self.control.to_dict(),
            "treatment": self.treatment.to_dict(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def build_backend(
    workload: "Workload",
    config: EngineConfig,
    *,
    backend: str = "single",
    num_shards: int = 3,
    stack: ExitStack | None = None,
):
    """Construct one engine of the requested backend flavour. Pool
    engines register their shutdown with ``stack`` (required for
    ``procpool``)."""
    if backend == "single":
        engine = AdEngine(
            corpus=workload.build_corpus(),
            graph=workload.graph,
            vectorizer=workload.vectorizer,
            tokenizer=workload.tokenizer,
            config=config,
        )
        for user in workload.users:
            engine.register_user(user.user_id, user.home)
        return engine
    if backend == "sharded":
        from repro.cluster.sharded import ShardedEngine

        return ShardedEngine(workload, num_shards, config=config)
    if backend == "procpool":
        from repro.cluster.procpool import ProcessShardedEngine

        if stack is None:
            raise ConfigError("procpool backend needs an ExitStack to close")
        return stack.enter_context(
            ProcessShardedEngine(workload, num_shards, config=config)
        )
    raise ConfigError(f"unknown backend {backend!r}; known: {BACKENDS}")


class _ArmObserver:
    """Accumulates the canary cohort's outcomes from driver hooks."""

    def __init__(self, cohort: frozenset[int]) -> None:
        self.cohort = cohort
        self.metrics = ArmMetrics()

    def on_result(self, msg_id: int, results) -> None:
        for part in results:
            if part.num_shed:
                self.metrics.shed_posts += 1
            for delivery in part.deliveries:
                if delivery.user_id in self.cohort:
                    self.metrics.deliveries += 1
                    self.metrics.impressions += len(delivery.slate)
                    self.metrics.revenue += delivery.revenue

    def on_click(self, user_id: int, ad_id: int, slot_index: int) -> None:
        if user_id in self.cohort:
            self.metrics.clicks += 1


def run_canary(
    workload: "Workload",
    events,
    *,
    control_config: EngineConfig,
    treatment_config: EngineConfig,
    fraction: float = 0.1,
    seed: int = 0,
    backend: str = "single",
    num_shards: int = 3,
    max_revenue_drop: float = 0.02,
    max_p99_ratio: float | None = None,
) -> CanaryReport:
    """Drive control and treatment engines with the same scripted stream
    and judge the treatment on the canary cohort's paired outcomes.

    ``max_revenue_drop`` fails the rollout when the cohort's revenue on
    the treatment arm falls more than that fraction below its revenue on
    the control arm. ``max_p99_ratio`` (opt-in: wall-clock is noisy)
    fails it when the treatment's post p99 exceeds the control's by more
    than that factor.
    """
    if fraction <= 0.0:
        raise ConfigError("canary fraction must be positive (no cohort)")
    events = list(events)
    if not events:
        raise ConfigError("cannot canary an empty event stream")
    # Attribution needs per-delivery outcomes on both arms.
    control_config = replace(control_config, collect_deliveries=True)
    treatment_config = replace(treatment_config, collect_deliveries=True)
    _, cohort = split_users(
        (user.user_id for user in workload.users), fraction=fraction, seed=seed
    )
    arms: dict[str, _ArmObserver] = {}
    totals: dict[str, ScenarioTotals] = {}
    latencies: dict[str, list[float]] = {}
    with ExitStack() as stack:
        for arm_name, config in (
            ("control", control_config),
            ("treatment", treatment_config),
        ):
            engine = build_backend(
                workload,
                config,
                backend=backend,
                num_shards=num_shards,
                stack=stack,
            )
            observer = _ArmObserver(cohort)
            driver = ScenarioDriver(
                engine,
                workload,
                on_result=observer.on_result,
                on_click=observer.on_click,
            )
            totals[arm_name] = driver.run(events)
            latencies[arm_name] = driver.post_latencies
            arms[arm_name] = observer
    for arm_name, observer in arms.items():
        recorder = LatencyRecorder(samples=latencies[arm_name])
        observer.metrics.p50_ms = recorder.p50() * 1000.0
        observer.metrics.p99_ms = recorder.p99() * 1000.0
    report = CanaryReport(
        backend=backend,
        fraction=fraction,
        seed=seed,
        cohort_size=len(cohort),
        total_users=len(workload.users),
        control=arms["control"].metrics,
        treatment=arms["treatment"].metrics,
        control_totals=totals["control"],
        treatment_totals=totals["treatment"],
        max_revenue_drop=max_revenue_drop,
        max_p99_ratio=max_p99_ratio,
    )
    if not cohort:
        report.reasons.append(
            f"canary cohort is empty at fraction={fraction} over "
            f"{len(workload.users)} users — raise the fraction"
        )
    if report.revenue_drop_fraction > max_revenue_drop:
        report.reasons.append(
            f"treatment revenue dropped {report.revenue_drop_fraction:.2%} "
            f"on the canary cohort (limit {max_revenue_drop:.2%}): "
            f"{report.treatment.revenue:.4f} vs {report.control.revenue:.4f}"
        )
    ratio = report.p99_ratio
    if max_p99_ratio is not None and ratio is not None and ratio > max_p99_ratio:
        report.reasons.append(
            f"treatment post p99 is {ratio:.2f}x control "
            f"(limit {max_p99_ratio:.2f}x)"
        )
    return report
