"""The adversarial scenario generators.

Each generator emits the traffic shape that breaks a different part of
the serving stack:

* ``flash-crowd`` — a retweet storm: one message's text re-posted by many
  users inside a tight window, front-loaded like a real viral spike.
  Stresses the shared-candidate cache and the admission bucket.
* ``celebrity-spike`` — the highest-fanout authors fire rapid bursts, so
  a handful of posts each fan out to huge follower sets. Stresses
  fan-out amplification and shard load balance.
* ``budget-burst`` — coordinated launches of aggressive, tiny-budget
  campaign clones followed by a post burst that drains them. Stresses
  budget accounting (spend must never pass the cap) and index churn.
* ``geo-wave`` — a cohort of users check-ins migrating towards one
  destination, shifting geo-targeting eligibility mid-stream.
* ``click-flood`` — a bot cohort clicks the top slots of nearly every
  slate it is served inside a window, poisoning the CTR estimator and
  the LinUCB reward stream with correlated positives.

Every generator draws only from its context's RNG and returns its events
time-sorted, so a composed stream regenerates bit-identically from the
suite seed (see :func:`repro.scenarios.base.build_scenario_stream`).
"""

from __future__ import annotations

from repro.scenarios.base import (
    ScenarioContext,
    ScenarioEvent,
    ScriptedCheckin,
    ScriptedClick,
    ScriptedEnd,
    ScriptedLaunch,
    ScriptedPost,
)


def _by_time(events: list[ScenarioEvent]) -> list[ScenarioEvent]:
    events.sort(key=lambda event: event.timestamp)
    return events


def _renumber_posts(events: list[ScenarioEvent], msg_base: int) -> list[ScenarioEvent]:
    """Assign block msg ids to already-time-sorted scripted posts."""
    out: list[ScenarioEvent] = []
    offset = 0
    for event in events:
        if isinstance(event, ScriptedPost):
            out.append(
                ScriptedPost(
                    event.timestamp, msg_base + offset, event.author_id, event.text
                )
            )
            offset += 1
        else:
            out.append(event)
    return out


def flash_crowd(
    context: ScenarioContext,
    *,
    posts: int = 45,
    window_fraction: float = 0.06,
) -> list[ScenarioEvent]:
    rng = context.rng
    viral = rng.choice(context.base_posts)
    w_start, w_len = context.pick_window(window_fraction)
    users = context.workload.users
    events: list[ScenarioEvent] = [
        ScriptedPost(
            # Beta(1.5, 4) front-loads arrivals: the storm peaks early
            # and decays, like a real viral spike.
            w_start + w_len * rng.betavariate(1.5, 4.0),
            0,  # renumbered below, in time order
            rng.choice(users).user_id,
            viral.text,
        )
        for _ in range(posts)
    ]
    return _renumber_posts(_by_time(events), context.msg_base)


def celebrity_spike(
    context: ScenarioContext,
    *,
    celebrities: int = 3,
    posts_per_celebrity: int = 8,
    window_fraction: float = 0.05,
) -> list[ScenarioEvent]:
    graph = context.workload.graph
    ranked = sorted(
        context.workload.users,
        key=lambda user: (-graph.fanout(user.user_id), user.user_id),
    )
    celebs = ranked[: max(1, celebrities)]
    rng = context.rng
    w_start, w_len = context.pick_window(window_fraction)
    events: list[ScenarioEvent] = []
    for celeb in celebs:
        for _ in range(posts_per_celebrity):
            events.append(
                ScriptedPost(
                    w_start + w_len * rng.random(),
                    0,
                    celeb.user_id,
                    rng.choice(context.base_posts).text,
                )
            )
    return _renumber_posts(_by_time(events), context.msg_base)


def budget_burst(
    context: ScenarioContext,
    *,
    campaigns: int = 6,
    budget: float = 1.5,
    bid_boost: float = 3.0,
    posts: int = 30,
    window_fraction: float = 0.12,
) -> list[ScenarioEvent]:
    rng = context.rng
    w_start, w_len = context.pick_window(window_fraction)
    # Aggressive clones of the highest-bid ads: boosted bids win auctions
    # and the tiny budgets exhaust mid-burst.
    pool = sorted(context.workload.ads, key=lambda ad: (-ad.bid, ad.ad_id))
    pool = pool[: max(campaigns * 3, campaigns)]
    chosen = rng.sample(pool, min(campaigns, len(pool)))
    events: list[ScenarioEvent] = []
    for index, template in enumerate(chosen):
        events.append(
            ScriptedLaunch(
                w_start + (w_len * 0.05) * rng.random(),
                context.ad_base + index,
                template.ad_id,
                template.bid * bid_boost,
                budget,
            )
        )
    graph = context.workload.graph
    authors = sorted(
        context.workload.users,
        key=lambda user: (-graph.fanout(user.user_id), user.user_id),
    )[: max(5, len(context.workload.users) // 10)]
    for _ in range(posts):
        events.append(
            ScriptedPost(
                w_start + w_len * (0.1 + 0.9 * rng.random()),
                0,
                rng.choice(authors).user_id,
                rng.choice(context.base_posts).text,
            )
        )
    # A third of the campaigns are pulled early: end-of-campaign churn
    # under burst traffic, not just budget exhaustion.
    for index in range(len(chosen) // 3):
        events.append(
            ScriptedEnd(w_start + w_len * 0.95, context.ad_base + index)
        )
    return _renumber_posts(_by_time(events), context.msg_base)


def geo_wave(
    context: ScenarioContext,
    *,
    traveller_fraction: float = 0.3,
    hops: int = 4,
    window_fraction: float = 0.5,
) -> list[ScenarioEvent]:
    rng = context.rng
    users = context.workload.users
    cohort = rng.sample(users, max(1, int(len(users) * traveller_fraction)))
    dest_lat = rng.uniform(-60.0, 60.0)
    dest_lon = rng.uniform(-150.0, 150.0)
    w_start, w_len = context.pick_window(window_fraction)
    events: list[ScenarioEvent] = []
    for user in cohort:
        for hop in range(hops):
            progress = (hop + 1) / hops
            events.append(
                ScriptedCheckin(
                    w_start + w_len * (hop + rng.random()) / hops,
                    user.user_id,
                    user.home.lat + (dest_lat - user.home.lat) * progress
                    + rng.gauss(0.0, 0.05),
                    user.home.lon + (dest_lon - user.home.lon) * progress
                    + rng.gauss(0.0, 0.05),
                )
            )
    return _by_time(events)


def click_flood(
    context: ScenarioContext,
    *,
    bot_fraction: float = 0.25,
    click_probability: float = 0.9,
    max_slots: int = 3,
    window_fraction: float = 0.5,
) -> list[ScenarioEvent]:
    rng = context.rng
    users = context.workload.users
    bots = sorted(
        user.user_id
        for user in rng.sample(users, max(1, int(len(users) * bot_fraction)))
    )
    w_start, w_len = context.pick_window(window_fraction)
    graph = context.workload.graph
    events: list[ScenarioEvent] = []
    for post in context.base_posts:
        if not w_start <= post.timestamp < w_start + w_len:
            continue
        followers = graph.followers(post.author_id)
        for bot in bots:  # sorted: the RNG stream is order-stable
            if bot in followers and rng.random() < click_probability:
                events.append(
                    ScriptedClick(
                        post.timestamp + rng.uniform(0.5, 8.0),
                        bot,
                        post.msg_id,
                        rng.randint(1, max_slots),
                    )
                )
    return _by_time(events)


SCENARIOS = {
    "flash-crowd": flash_crowd,
    "celebrity-spike": celebrity_spike,
    "budget-burst": budget_burst,
    "geo-wave": geo_wave,
    "click-flood": click_flood,
}

SCENARIO_NAMES = tuple(sorted(SCENARIOS))
