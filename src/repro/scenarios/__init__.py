"""Adversarial workload scenarios, record/replay traces and the canary
A/B rollout harness."""

from repro.scenarios.base import (
    SCENARIO_AD_BASE,
    SCENARIO_AD_BLOCK,
    SCENARIO_MSG_BASE,
    SCENARIO_MSG_BLOCK,
    TRACE_VERSION,
    ScenarioContext,
    ScenarioEvent,
    ScenarioStream,
    ScriptedCheckin,
    ScriptedClick,
    ScriptedEnd,
    ScriptedLaunch,
    ScriptedPost,
    build_scenario_stream,
    check_stream,
    merge_events,
    workload_fingerprint,
)
from repro.scenarios.canary import (
    BACKENDS,
    ArmMetrics,
    CanaryReport,
    build_backend,
    canary_arm,
    run_canary,
    split_users,
)
from repro.scenarios.driver import ScenarioDriver, ScenarioTotals
from repro.scenarios.generators import SCENARIO_NAMES, SCENARIOS
from repro.scenarios.trace import read_trace, render_trace, write_trace

__all__ = [
    "ArmMetrics",
    "BACKENDS",
    "CanaryReport",
    "SCENARIOS",
    "SCENARIO_AD_BASE",
    "SCENARIO_AD_BLOCK",
    "SCENARIO_MSG_BASE",
    "SCENARIO_MSG_BLOCK",
    "SCENARIO_NAMES",
    "ScenarioContext",
    "ScenarioDriver",
    "ScenarioEvent",
    "ScenarioStream",
    "ScenarioTotals",
    "ScriptedCheckin",
    "ScriptedClick",
    "ScriptedEnd",
    "ScriptedLaunch",
    "ScriptedPost",
    "TRACE_VERSION",
    "build_backend",
    "build_scenario_stream",
    "canary_arm",
    "check_stream",
    "merge_events",
    "read_trace",
    "render_trace",
    "run_canary",
    "split_users",
    "workload_fingerprint",
    "write_trace",
]
