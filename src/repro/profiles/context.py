"""Sliding-window feed context with exponential time decay.

The *context* of a user at time t is what their news feed currently shows:
the term vectors of the last ``window_size`` delivered messages, each scaled
by ``0.5 ** (age / half_life)``. The incremental ad engine reads this
context thousands of times per second, so the aggregate is maintained with
a lazy global scale factor:

* the stored aggregate is valid "in scaled units"; a single float carries
  the decay accumulated since the last fold;
* an arrival costs O(|message terms|): bump the scale, add the new vector
  divided by it;
* an eviction subtracts the entry's original contribution (each entry
  remembers the scale it was inserted under), also O(|message terms|).

Floating-point drift from repeated add/subtract is washed out by an exact
rebuild every ``rebuild_every`` mutations (and tests assert the incremental
aggregate tracks the exact one to tight tolerance).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.util.sparse import (
    MutableSparseVector,
    SparseVector,
    add_scaled,
    l2_normalize,
)

_REFOLD_BELOW = 1e-9  # fold the scale into the stored weights past this


@dataclass(frozen=True, slots=True)
class _Entry:
    msg_id: int
    timestamp: float
    vec: SparseVector
    insert_scale: float


class FeedContext:
    """Decayed aggregate over the last ``window_size`` feed messages."""

    def __init__(
        self,
        window_size: int = 20,
        half_life_s: float | None = 1800.0,
        *,
        max_age_s: float | None = None,
        rebuild_every: int = 512,
        prune_below: float = 1e-9,
    ) -> None:
        if window_size < 1:
            raise ConfigError(f"window_size must be >= 1, got {window_size}")
        if half_life_s is not None and half_life_s <= 0.0:
            raise ConfigError(f"half_life_s must be positive or None, got {half_life_s}")
        if max_age_s is not None and max_age_s <= 0.0:
            raise ConfigError(f"max_age_s must be positive or None, got {max_age_s}")
        if rebuild_every < 1:
            raise ConfigError(f"rebuild_every must be >= 1, got {rebuild_every}")
        self.window_size = window_size
        self.half_life_s = half_life_s
        self.max_age_s = max_age_s
        self.rebuild_every = rebuild_every
        self.prune_below = prune_below
        self._entries: deque[_Entry] = deque()
        self._stored: MutableSparseVector = {}  # aggregate in scaled units
        self._scale = 1.0  # real aggregate = stored * scale
        self._last_t = 0.0
        self._ops = 0
        self._epoch = 0

    # -- inspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def epoch(self) -> int:
        """Bumped on every mutation."""
        return self._epoch

    @property
    def last_update(self) -> float:
        return self._last_t

    def message_ids(self) -> list[int]:
        """Window contents, oldest first."""
        return [entry.msg_id for entry in self._entries]

    # -- maintenance -------------------------------------------------------

    def _advance(self, timestamp: float) -> None:
        """Apply decay from the last event time up to ``timestamp``."""
        dt = max(0.0, timestamp - self._last_t)
        self._last_t = max(self._last_t, timestamp)
        if dt > 0.0 and self.half_life_s is not None:
            self._scale *= math.pow(0.5, dt / self.half_life_s)
            if self._scale < _REFOLD_BELOW:
                self._fold_scale()

    def _fold_scale(self) -> None:
        """Bake the scale into the stored weights and reset it to 1.

        Entries remember the scale they were inserted under so they can be
        subtracted later; a fold changes the basis, so those remembered
        scales are remapped too (O(window size), folds are rare).
        """
        scale = self._scale
        self._stored = {
            term: weight * scale
            for term, weight in self._stored.items()
            if abs(weight * scale) > self.prune_below
        }
        self._entries = deque(
            _Entry(
                msg_id=entry.msg_id,
                timestamp=entry.timestamp,
                vec=entry.vec,
                insert_scale=entry.insert_scale / scale,
            )
            for entry in self._entries
        )
        self._scale = 1.0

    def add(self, msg_id: int, timestamp: float, vec: SparseVector) -> list[int]:
        """Deliver a message into the window; returns evicted message ids."""
        self._advance(timestamp)
        entry = _Entry(
            msg_id=msg_id,
            timestamp=self._last_t,
            vec=dict(vec),
            insert_scale=self._scale,
        )
        self._entries.append(entry)
        if self._scale > 0.0:
            add_scaled(self._stored, vec, 1.0 / self._scale)
        evicted = self._evict(timestamp)
        self._ops += 1
        self._epoch += 1
        if self._ops % self.rebuild_every == 0:
            self.rebuild()
        return evicted

    def _evict(self, timestamp: float) -> list[int]:
        evicted: list[int] = []
        while len(self._entries) > self.window_size:
            evicted.append(self._remove_oldest())
        if self.max_age_s is not None:
            while self._entries and (
                timestamp - self._entries[0].timestamp > self.max_age_s
            ):
                evicted.append(self._remove_oldest())
        return evicted

    def _remove_oldest(self) -> int:
        entry = self._entries.popleft()
        if entry.insert_scale > 0.0:
            add_scaled(
                self._stored,
                entry.vec,
                -1.0 / entry.insert_scale,
                prune_below=self.prune_below,
            )
        return entry.msg_id

    def expire(self, timestamp: float) -> list[int]:
        """Advance time and drop over-age entries without adding anything."""
        self._advance(timestamp)
        evicted = self._evict(timestamp)
        if evicted:
            self._epoch += 1
        return evicted

    def rebuild(self) -> None:
        """Exact recomputation of the aggregate from the raw entries.

        Called periodically to cancel incremental floating-point drift.
        """
        stored: MutableSparseVector = {}
        remapped: deque[_Entry] = deque()
        for entry in self._entries:
            if self.half_life_s is None:
                decay = 1.0
            else:
                age = self._last_t - entry.timestamp
                decay = math.pow(0.5, age / self.half_life_s)
            add_scaled(stored, entry.vec, decay)
            # In the rebuilt basis (scale = 1) this entry's stored
            # contribution is decay * vec, i.e. insert_scale = 1 / decay.
            remapped.append(
                _Entry(
                    msg_id=entry.msg_id,
                    timestamp=entry.timestamp,
                    vec=entry.vec,
                    insert_scale=(1.0 / decay) if decay > 0.0 else math.inf,
                )
            )
        self._entries = remapped
        self._stored = {
            term: weight
            for term, weight in stored.items()
            if abs(weight) > self.prune_below
        }
        self._scale = 1.0

    # -- reads -----------------------------------------------------------------

    def vector(self) -> MutableSparseVector:
        """Unit-L2 context vector (scale cancels under normalisation)."""
        return l2_normalize(self._stored)

    def raw_vector(self) -> MutableSparseVector:
        """Real-valued (decayed, unnormalised) aggregate — a copy."""
        return {
            term: weight * self._scale
            for term, weight in self._stored.items()
            if abs(weight * self._scale) > self.prune_below
        }

    def dot_with(self, terms: SparseVector) -> float:
        """Real-valued dot(context, terms) without materialising a copy.

        O(len(terms)) — this is the hot read of the incremental maintainer.
        """
        total = 0.0
        for term, weight in terms.items():
            stored = self._stored.get(term)
            if stored is not None:
                total += stored * weight
        return total * self._scale
