"""Time-decayed user interest profiles.

A profile accumulates the term vectors of everything a user posts, with
exponential half-life decay so stale interests fade. Because the engine
only ever consumes the *normalised* profile vector, decay between updates
cancels out under normalisation — the profile therefore only needs to apply
decay when new mass arrives, making updates O(profile size) and reads
O(profile size) with no background sweeps.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError
from repro.util.sparse import MutableSparseVector, SparseVector, l2_normalize


class UserProfile:
    """Exponentially-decayed accumulator of a user's posted content."""

    __slots__ = ("_epoch", "_last_t", "_weights", "half_life_s", "prune_below")

    def __init__(
        self,
        half_life_s: float | None = 6 * 3600.0,
        *,
        prune_below: float = 1e-6,
    ) -> None:
        if half_life_s is not None and half_life_s <= 0.0:
            raise ConfigError(f"half_life_s must be positive or None, got {half_life_s}")
        if prune_below < 0.0:
            raise ConfigError(f"prune_below must be >= 0, got {prune_below}")
        self.half_life_s = half_life_s
        self.prune_below = prune_below
        self._weights: MutableSparseVector = {}
        self._last_t = 0.0
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Bumped on every update; caches keyed on it never go stale."""
        return self._epoch

    @property
    def last_update(self) -> float:
        return self._last_t

    def __len__(self) -> int:
        return len(self._weights)

    @property
    def is_empty(self) -> bool:
        return not self._weights

    def update(self, vec: SparseVector, timestamp: float, *, scale: float = 1.0) -> None:
        """Fold a posted message's term vector into the profile.

        Existing mass decays by ``0.5 ** (Δt / half_life)`` before the new
        vector is added, so more recent posts dominate. Out-of-order events
        (timestamp slightly before the last update) are treated as
        simultaneous rather than rejected — feed streams are only loosely
        ordered.
        """
        if scale <= 0.0:
            raise ConfigError(f"scale must be positive, got {scale}")
        if not vec:
            return
        if self._weights and self.half_life_s is not None:
            dt = max(0.0, timestamp - self._last_t)
            if dt > 0.0:
                decay = math.pow(0.5, dt / self.half_life_s)
                self._weights = {
                    term: weight * decay
                    for term, weight in self._weights.items()
                    if weight * decay > self.prune_below
                }
        self._last_t = max(self._last_t, timestamp)
        for term, weight in vec.items():
            self._weights[term] = self._weights.get(term, 0.0) + scale * weight
        self._epoch += 1

    def vector(self) -> MutableSparseVector:
        """Unit-L2 interest vector (empty dict while the profile is empty).

        Uniform decay since the last update cancels under normalisation, so
        this is exact at any read time.
        """
        return l2_normalize(self._weights)

    def top_interests(self, limit: int = 10) -> list[tuple[str, float]]:
        """Heaviest normalised terms, for inspection and examples."""
        vector = self.vector()
        return sorted(vector.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]


class ProfileStore:
    """Lazily-created profiles for all registered users."""

    def __init__(self, half_life_s: float | None = 6 * 3600.0) -> None:
        if half_life_s is not None and half_life_s <= 0.0:
            raise ConfigError(f"half_life_s must be positive or None, got {half_life_s}")
        self.half_life_s = half_life_s
        self._profiles: dict[int, UserProfile] = {}

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._profiles

    def get_or_create(self, user_id: int) -> UserProfile:
        profile = self._profiles.get(user_id)
        if profile is None:
            profile = UserProfile(self.half_life_s)
            self._profiles[user_id] = profile
        return profile

    def users(self) -> list[int]:
        return sorted(self._profiles)
