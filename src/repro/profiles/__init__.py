"""Per-user state: time-decayed interest profiles and feed-context windows."""

from repro.profiles.context import FeedContext
from repro.profiles.profile import ProfileStore, UserProfile

__all__ = ["FeedContext", "ProfileStore", "UserProfile"]
