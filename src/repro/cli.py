"""Command-line interface.

Four subcommands cover the library's workflows end-to-end::

    python -m repro generate --users 300 --ads 2000 --posts 300 --out wl/
    python -m repro stats --workload wl/
    python -m repro replay --workload wl/ --mode shared --limit 200
    python -m repro effectiveness --workload wl/ --max-posts 100

``replay`` and ``effectiveness`` also accept generation flags directly
(omit ``--workload``) for one-shot runs.

``replay --live`` switches on the live telemetry layer: a
:class:`~repro.obs.registry.MetricsRegistry` rides along with the engine
and a dashboard line prints at every sampling interval of *stream* time.
Add ``--slo`` to grade each interval against p99/throughput targets
(``--slo-p99-ms stage=ms``, ``--slo-min-dps``) and finish with an
OK / DEGRADED / OVERLOADED verdict; ``--metrics-out`` appends one JSON
line per interval and ``--prom-out`` writes the final snapshot in
Prometheus text exposition format. A failing run-level verdict exits
nonzero, so scripts and CI can gate on SLO compliance.

``replay --qos`` closes the loop: a
:class:`~repro.qos.controller.QosController` steps a degradation ladder
from the interval grades (shrink the over-fetch, shrink the slate, skip
the certificate fallback, serve candidates-only, shed) and, with
``--qos-rate``, puts a value-aware admission controller in front of the
fan-out. The dashboard line then shows the live rung.

``replay --trace`` attaches distributed request tracing (see
:mod:`repro.obs.trace`): head-sample ``--trace-sample`` of requests,
tail-capture the interesting rest (errors, tail latency, shed/degraded,
retries, failovers, breach intervals), export retained segments with
``--trace-out`` and arm the flight recorder with ``--flight-out``.
``repro trace --dump PATH`` reads either file back and renders the
slowest-trace table, the critical path and per-stage attribution.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.config import EngineConfig, EngineMode
from repro.datagen.workload import Workload, WorkloadConfig, generate_workload
from repro.errors import ConfigError, ReproError
from repro.eval.perf import run_perf
from repro.eval.report import ascii_table
from repro.index.factory import SEARCHER_KINDS
from repro.io.serialize import load_workload, save_workload


def _add_generation_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=300)
    parser.add_argument("--ads", type=int, default=2000)
    parser.add_argument("--posts", type=int, default=300)
    parser.add_argument("--topics", type=int, default=20)
    parser.add_argument("--vocab", type=int, default=5000)
    parser.add_argument("--seed", type=int, default=7)


def _workload_from_args(args: argparse.Namespace) -> Workload:
    if getattr(args, "workload", None):
        return load_workload(args.workload)
    return generate_workload(
        WorkloadConfig(
            num_users=args.users,
            num_ads=args.ads,
            num_posts=args.posts,
            num_topics=args.topics,
            vocab_size=args.vocab,
            seed=args.seed,
        )
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    workload = _workload_from_args(args)
    save_workload(args.out, workload)
    print(f"saved workload to {args.out}")
    print(ascii_table(
        ["statistic", "value"],
        [[key, value] for key, value in workload.stats().items()],
    ))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    workload = load_workload(args.workload)
    print(ascii_table(
        ["statistic", "value"],
        [[key, value] for key, value in workload.stats().items()],
        title=f"Workload statistics: {args.workload}",
    ))
    return 0


def _parse_slo_targets(entries: Sequence[str] | None) -> dict[str, float]:
    """Parse repeated ``--slo-p99-ms stage=ms`` flags into a target map."""
    targets: dict[str, float] = {}
    for entry in entries or ():
        stage, sep, value = entry.partition("=")
        if not sep or not stage.strip():
            raise ConfigError(
                f"--slo-p99-ms expects stage=milliseconds, got {entry!r}"
            )
        try:
            targets[stage.strip()] = float(value)
        except ValueError as error:
            raise ConfigError(
                f"--slo-p99-ms expects a numeric target, got {entry!r}"
            ) from error
    return targets


def _dashboard_line(snapshot, report, controller=None) -> str:
    """One fixed-width live dashboard line per sampling interval."""
    delivery = snapshot.windows.get("stage_delivery")
    p99_ms = delivery.p99 * 1e3 if delivery is not None and delivery.count else 0.0
    parts = [
        f"t={snapshot.at:>10.1f}s",
        f"posts={int(snapshot.counters.get('posts', 0)):>6d}",
        f"deliveries={int(snapshot.counters.get('deliveries', 0)):>8d}",
        f"win p99[delivery]={p99_ms:8.3f}ms",
    ]
    if report is not None:
        parts.append(f"dps={report.deliveries_per_s:>9.1f}")
        parts.append(f"burn={report.burn_rate:5.2f}")
        parts.append(f"[{report.state.value.upper()}]")
    if controller is not None:
        parts.append(
            f"rung={controller.rung_index}:{controller.rung.name}"
        )
    return "  ".join(parts)


def _build_qos_controller(args: argparse.Namespace):
    """Wire the ``--qos`` flags into a QoS controller (None without --qos)."""
    if not args.qos:
        return None
    from repro.qos import AdmissionController, DegradationLadder, QosController

    admission = None
    if args.qos_rate > 0.0:
        admission = AdmissionController(
            rate_per_s=args.qos_rate,
            burst_s=args.qos_burst_s,
            max_queue_s=args.qos_queue_s,
        )
    ladder = DegradationLadder(
        floor=args.qos_floor if args.qos_floor is not None else None
    )
    return QosController(
        ladder=ladder,
        admission=admission,
        recover_after=args.qos_recover_after,
    )


def _build_request_tracer(args: argparse.Namespace):
    """Wire the ``--trace`` flags into a RequestTracer (None without
    --trace; the dependent flags then raise instead of silently no-op)."""
    if not args.trace:
        for value, flag in (
            (args.trace_out, "--trace-out"),
            (args.flight_out, "--flight-out"),
            (args.trace_sample, "--trace-sample"),
        ):
            if value is not None:
                raise ConfigError(
                    f"{flag} requires --trace (tracing is off by default)"
                )
        return None
    from repro.obs.trace import RequestTracer

    sample = args.trace_sample if args.trace_sample is not None else 0.01
    return RequestTracer(sample_rate=sample, seed=args.seed, process="main")


def _write_trace_export(path: str, segments) -> int:
    """Write retained trace segments as JSONL (the --trace-out sink;
    same line schema as flight dumps, so `repro trace` reads both)."""
    import json
    from pathlib import Path

    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", encoding="utf-8") as handle:
        for segment in segments:
            handle.write(json.dumps(segment.to_dict()) + "\n")
    return len(segments)


def _print_trace_summary(request_tracer) -> None:
    summary = request_tracer.summary()
    print(
        f"tracing: started={summary['started']} "
        f"finished={summary['finished']} retained={summary['retained']} "
        f"ring={summary['ring']} dropped={summary['dropped']}"
    )


def _replay_live(
    args: argparse.Namespace,
    workload: Workload,
    config: EngineConfig,
    request_tracer=None,
) -> int:
    """The ``replay --live`` path: windowed registry, interval dashboard,
    optional SLO grading and timeseries/Prometheus sinks."""
    from repro.obs.health import HealthMonitor, HealthState, SloSpec
    from repro.obs.prometheus import TimeseriesWriter, render_prometheus
    from repro.obs.registry import MetricsRegistry

    posts = workload.posts if args.limit is None else workload.posts[: args.limit]
    if not posts:
        raise ConfigError("no posts to replay (empty workload or --limit 0)")
    timestamps = [post.timestamp for post in posts]
    span = max(timestamps) - min(timestamps)
    interval = args.interval if args.interval else max(span / 12.0, 1e-6)
    window = args.window if args.window else interval * 5.0
    registry = MetricsRegistry(window_s=window)
    controller = _build_qos_controller(args)

    monitor = None
    recorder = None
    if request_tracer is not None and args.flight_out:
        from repro.obs.recorder import FlightRecorder

        # Providers are evaluated at dump time; `monitor` is assigned
        # just below, before any interval can fire.
        recorder = FlightRecorder(
            request_tracer,
            args.flight_out,
            health=lambda: monitor.summary() if monitor is not None else None,
            qos=lambda: controller.summary() if controller is not None else None,
            registry=lambda: registry.snapshot().to_dict(),
        )

    def on_breach(report) -> None:
        # Raw-grade breach: snapshot the black box at the *first* bad
        # interval (rate-limited to one dump per reason).
        if recorder is not None:
            recorder.dump("slo_breach")

    if args.slo or controller is not None:  # --qos needs grades to react to
        targets = _parse_slo_targets(args.slo_p99_ms)
        if not targets and args.slo_min_dps <= 0.0:
            # A bare --slo still needs something to judge: a permissive
            # default target on the end-to-end delivery stage.
            targets = {"delivery": 50.0}
        monitor = HealthMonitor(
            registry,
            SloSpec(
                stage_p99_ms=targets,
                min_deliveries_per_s=max(args.slo_min_dps, 0.0),
            ),
            on_breach=on_breach if request_tracer is not None else None,
        )
    writer = TimeseriesWriter(args.metrics_out) if args.metrics_out else None

    print(
        f"live replay: mode={args.mode} interval={interval:g}s "
        f"window={window:g}s slo={'on' if monitor else 'off'} "
        f"qos={'on' if controller else 'off'}"
    )

    def on_interval(now: float, wall_seconds: float) -> None:
        snapshot = registry.snapshot(now)
        report = (
            monitor.evaluate(now, wall_seconds=wall_seconds) if monitor else None
        )
        if controller is not None and report is not None:
            # Closed loop: the raw interval grade steps the ladder (the
            # controller applies its own hysteresis on top).
            controller.observe(report.grade)
        if request_tracer is not None and report is not None:
            # Segments finishing inside a breach window are force-kept.
            request_tracer.set_breach(report.grade is not HealthState.OK)
        print(_dashboard_line(snapshot, report, controller))
        if writer is not None:
            writer.append(snapshot, health=report)

    result = run_perf(
        workload,
        config,
        label=args.mode,
        limit_posts=args.limit,
        metrics_registry=registry,
        interval_s=interval,
        on_interval=on_interval,
        qos=controller,
        request_tracer=request_tracer,
    )

    rows: list[list[object]] = [
        ["mode", args.mode],
        ["posts", result.posts],
        ["deliveries", result.deliveries],
        ["deliveries/s", round(result.deliveries_per_s, 1)],
        ["post p50 (ms)", round(result.post_latency_p50_ms, 3)],
        ["post p99 (ms)", round(result.post_latency_p99_ms, 3)],
        ["fallback rate", round(result.fallback_rate, 4)],
        ["impressions", result.impressions],
    ]
    if monitor is not None:
        summary = monitor.summary()
        rows.extend([
            ["intervals", summary["intervals"]],
            ["violating intervals", summary["violating_intervals"]],
            ["compliance", round(summary["compliance"], 4)],
            ["burn rate", round(summary["burn_rate"], 3)],
        ])
        if writer is not None:
            writer.append_summary(summary)
    if controller is not None:
        qos_summary = controller.summary()
        rows.extend([
            ["qos rung", f"{qos_summary['rung']}:{qos_summary['rung_name']}"],
            ["qos degrade steps", qos_summary["degrade_steps"]],
            ["qos recover steps", qos_summary["recover_steps"]],
            ["deliveries shed", result.deliveries_shed],
            ["deliveries degraded", result.deliveries_degraded],
            ["revenue shed (bound)", round(result.revenue_shed_upper_bound, 4)],
        ])
    print(ascii_table(["metric", "value"], rows, title="Replay summary"))
    if args.prom_out:
        from pathlib import Path

        text = render_prometheus(registry.snapshot())
        path = Path(args.prom_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        print(f"wrote Prometheus exposition to {args.prom_out}")
    if writer is not None:
        print(f"wrote {writer.rows} timeseries rows to {args.metrics_out}")
    exit_code = 0
    if monitor is not None:
        verdict = monitor.verdict()
        print(f"SLO verdict: {verdict.value.upper()}")
        for report in monitor.reports:
            for breach in report.breaches:
                print(f"  breach @ t={report.at:.1f}s: {breach}")
        # A failing run-level verdict fails the process: CI and scripts
        # gate on the exit code, not on scraping the verdict line.
        if verdict is not HealthState.OK:
            if recorder is not None:
                # The black box for the failing run, dumped before exit.
                recorder.dump(f"verdict_{verdict.value}", force=True)
            exit_code = 1
    if request_tracer is not None:
        if args.trace_out:
            count = _write_trace_export(
                args.trace_out, list(request_tracer.retained)
            )
            print(f"wrote {count} trace segments to {args.trace_out}")
        if recorder is not None:
            if recorder.dumps == 0:  # healthy run: still honour --flight-out
                recorder.dump("signal")
            print(
                f"flight recorder: {recorder.dumps} dump(s) at {args.flight_out}"
            )
        _print_trace_summary(request_tracer)
    return exit_code


def _replay_workers(
    args: argparse.Namespace,
    workload: Workload,
    config: EngineConfig,
    request_tracer=None,
) -> int:
    """The ``replay --workers N`` path: drive the multiprocess backend.

    Each shard runs as a real worker process behind the router; the
    stream is dispatched in post batches so IPC is paid per batch, not
    per delivery. The live/SLO/QoS dashboards ride on the single-engine
    simulator and are not available here (yet) — combining them raises.
    ``--trace`` *is* supported: contexts ride inside the RPC frames, the
    router drains worker segments at the end, and a worker crash
    auto-dumps the flight recorder before the error surfaces.
    """
    from time import perf_counter

    from repro.cluster.procpool import ProcessShardedEngine

    if args.live or args.slo or args.qos or args.metrics_out or args.prom_out:
        raise ConfigError(
            "--workers drives the multiprocess backend; the --live/--slo/"
            "--qos dashboards run on the in-process engine — drop one"
        )
    posts = workload.posts if args.limit is None else workload.posts[: args.limit]
    if not posts:
        raise ConfigError("no posts to replay (empty workload or --limit 0)")
    batch = max(args.batch, 1)
    started = perf_counter()
    with ProcessShardedEngine(
        workload,
        args.workers,
        config=config,
        request_tracer=request_tracer,
        flight_path=args.flight_out if request_tracer is not None else None,
    ) as engine:
        for offset in range(0, len(posts), batch):
            engine.post_batch(posts[offset : offset + batch])
        elapsed = perf_counter() - started
        stats = engine.cluster_stats()
        imbalance = engine.load_imbalance()
        amplification = engine.amplification()
        if request_tracer is not None:
            engine.drain_worker_traces()  # pull segments while workers live
            if args.flight_out:
                engine.dump_flight(args.flight_out, reason="signal")
    print(ascii_table(
        ["metric", "value"],
        [
            ["mode", args.mode],
            ["workers", args.workers],
            ["batch size", batch],
            ["posts", stats.posts],
            ["deliveries", stats.deliveries],
            ["posts/s", round(stats.posts / elapsed, 1)],
            ["deliveries/s", round(stats.deliveries / elapsed, 1)],
            ["impressions", stats.impressions],
            ["revenue", round(stats.revenue, 2)],
            ["amplification", round(amplification, 3)],
            ["load imbalance", round(imbalance, 3)],
        ],
        title="Replay summary (multiprocess backend)",
    ))
    if request_tracer is not None:
        if args.trace_out:
            count = _write_trace_export(
                args.trace_out, list(request_tracer.retained)
            )
            print(f"wrote {count} trace segments to {args.trace_out}")
        if args.flight_out:
            print(f"wrote flight dump to {args.flight_out}")
        _print_trace_summary(request_tracer)
    return 0


def _replay_scenario(
    args: argparse.Namespace, workload: Workload, config: EngineConfig
) -> int:
    """The ``replay --scenario`` / ``--replay-trace`` path: drive a
    composed adversarial stream (or a recorded trace of one) through the
    chosen backend and print the replay-contract totals.

    The canonical ``scenario totals:`` line at the end is the replay
    contract: a recorded trace replayed on the same backend reproduces
    it byte-identically (CI diffs the two lines).
    """
    from contextlib import ExitStack
    from dataclasses import replace

    from repro.scenarios import (
        ScenarioDriver,
        build_backend,
        build_scenario_stream,
        read_trace,
        workload_fingerprint,
        write_trace,
    )

    if args.live or args.slo or args.qos or args.trace or args.metrics_out:
        raise ConfigError(
            "--scenario/--replay-trace drive the scripted-event path; the "
            "--live/--slo/--qos/--trace dashboards run on the post-stream "
            "simulator — drop one side"
        )
    if args.replay_trace:
        if args.scenario:
            raise ConfigError(
                "--replay-trace replays a recorded stream; --scenario "
                "generates a fresh one — pick one"
            )
        stream = read_trace(args.replay_trace)
        expected = workload_fingerprint(workload)
        if stream.workload_fingerprint != expected:
            raise ConfigError(
                f"trace was recorded over a different workload "
                f"(trace {stream.workload_fingerprint}, this run {expected})"
            )
    else:
        stream = build_scenario_stream(
            workload,
            args.scenario,
            seed=args.scenario_seed,
            limit_posts=args.limit,
        )
    if args.record:
        count = write_trace(args.record, stream)
        print(f"recorded {count} events to {args.record}")
    if args.workers and args.shards:
        raise ConfigError("--workers and --shards pick different backends — drop one")
    backend = "single"
    num_shards = 0
    if args.workers:
        backend, num_shards = "procpool", args.workers
    elif args.shards:
        backend, num_shards = "sharded", args.shards
    # Click-intent resolution reads the served slates off every result.
    config = replace(config, collect_deliveries=True)
    with ExitStack() as stack:
        engine = build_backend(
            workload, config, backend=backend, num_shards=num_shards, stack=stack
        )
        totals = ScenarioDriver(engine, workload).run(stream.events)
    rows = [
        ["backend", backend if num_shards == 0 else f"{backend}x{num_shards}"],
        ["scenarios", ",".join(stream.scenarios) or "(trace)"],
        ["scenario seed", stream.seed],
        ["events", len(stream.events)],
    ]
    rows.extend(totals.rows())
    rows.append(["wall seconds", round(totals.wall_seconds, 3)])
    print(ascii_table(["metric", "value"], rows, title="Scenario replay"))
    print(f"scenario totals: {totals.canonical()}")
    return 0


def _coerce_override(name: str, raw: str, current) -> object:
    """Parse an ``--arm name=value`` string against the control config's
    field type, so the treatment config stays validated."""
    if isinstance(current, bool):
        lowered = raw.lower()
        if lowered in ("true", "1", "yes", "on"):
            return True
        if lowered in ("false", "0", "no", "off"):
            return False
        raise ConfigError(f"--arm {name} expects a boolean, got {raw!r}")
    if isinstance(current, EngineMode):
        return EngineMode(raw)
    if isinstance(current, int) and not isinstance(current, bool):
        return int(raw)
    if isinstance(current, float):
        return float(raw)
    return raw


def _cmd_canary(args: argparse.Namespace) -> int:
    """Drive a canary A/B rollout over an adversarial stream and gate on
    the cohort's paired revenue/latency diff."""
    from dataclasses import fields, replace

    from repro.scenarios import build_scenario_stream, run_canary

    workload = _workload_from_args(args)
    control = EngineConfig(
        mode=EngineMode(args.mode),
        k=args.k,
        searcher=args.searcher,
        collect_deliveries=True,
    )
    known = {spec.name for spec in fields(EngineConfig)}
    overrides: dict[str, object] = {}
    for item in args.arm or []:
        name, separator, raw = item.partition("=")
        if not separator:
            raise ConfigError(f"--arm expects NAME=VALUE, got {item!r}")
        name = name.strip()
        if name not in known:
            raise ConfigError(
                f"--arm {name!r} is not an EngineConfig field; "
                f"known: {sorted(known)}"
            )
        overrides[name] = _coerce_override(
            name, raw.strip(), getattr(control, name)
        )
    treatment = replace(control, **overrides) if overrides else control
    stream = build_scenario_stream(
        workload,
        args.scenario or [],
        seed=args.scenario_seed,
        limit_posts=args.limit,
    )
    report = run_canary(
        workload,
        stream.events,
        control_config=control,
        treatment_config=treatment,
        fraction=args.fraction,
        seed=args.canary_seed,
        backend="sharded" if args.shards else "single",
        num_shards=args.shards or 0,
        max_revenue_drop=args.max_revenue_drop,
        max_p99_ratio=args.max_p99_ratio,
    )
    if args.report_out:
        from pathlib import Path

        out = Path(args.report_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report.to_json() + "\n", encoding="utf-8")
        print(f"wrote canary report to {args.report_out}")
    rows = [
        ["scenarios", ",".join(stream.scenarios) or "(base stream)"],
        ["cohort", f"{report.cohort_size}/{report.total_users} users"],
        ["arm overrides", ", ".join(f"{k}={v}" for k, v in overrides.items()) or "(none)"],
        ["control revenue", round(report.control.revenue, 4)],
        ["treatment revenue", round(report.treatment.revenue, 4)],
        ["revenue diff", report.revenue_diff],
        ["revenue drop", f"{report.revenue_drop_fraction:.2%}"],
        ["control clicks", report.control.clicks],
        ["treatment clicks", report.treatment.clicks],
        ["control p99 (ms)", round(report.control.p99_ms, 3)],
        ["treatment p99 (ms)", round(report.treatment.p99_ms, 3)],
    ]
    print(ascii_table(["metric", "value"], rows, title="Canary rollout"))
    print(f"canary verdict: {report.verdict.upper()}")
    for reason in report.reasons:
        print(f"  {reason}")
    return 0 if report.verdict == "pass" else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    workload = _workload_from_args(args)
    config = EngineConfig(
        mode=EngineMode(args.mode),
        k=args.k,
        searcher=args.searcher,
        exact_fallback=not args.approximate,
        collect_deliveries=False,
        charge_impressions=not args.no_charging,
        personalize=args.personalize,
        alpha_ucb=args.alpha_ucb,
        linucb_sync_interval_s=args.linucb_sync,
    )
    if args.scenario or args.replay_trace:
        return _replay_scenario(args, workload, config)
    request_tracer = _build_request_tracer(args)
    if args.workers:
        return _replay_workers(args, workload, config, request_tracer)
    if args.live or args.slo or args.qos or args.metrics_out or args.prom_out:
        return _replay_live(args, workload, config, request_tracer)
    result = run_perf(
        workload,
        config,
        label=args.mode,
        limit_posts=args.limit,
        request_tracer=request_tracer,
    )
    print(ascii_table(
        ["metric", "value"],
        [
            ["mode", args.mode],
            ["searcher", args.searcher],
            ["posts", result.posts],
            ["deliveries", result.deliveries],
            ["deliveries/s", round(result.deliveries_per_s, 1)],
            ["post p50 (ms)", round(result.post_latency_p50_ms, 3)],
            ["post p99 (ms)", round(result.post_latency_p99_ms, 3)],
            ["fallback rate", round(result.fallback_rate, 4)],
            ["impressions", result.impressions],
        ],
        title="Replay summary",
    ))
    if request_tracer is not None:
        if args.trace_out:
            count = _write_trace_export(
                args.trace_out, list(request_tracer.retained)
            )
            print(f"wrote {count} trace segments to {args.trace_out}")
        if args.flight_out:
            from repro.obs.recorder import write_flight_dump

            write_flight_dump(
                args.flight_out,
                request_tracer.flight_traces(),
                reason="signal",
                extra={"tracer": request_tracer.summary()},
            )
            print(f"wrote flight dump to {args.flight_out}")
        _print_trace_summary(request_tracer)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render a flight dump / trace export: slowest-trace table, the
    slowest trace's critical path, and its per-stage attribution."""
    from repro.obs.recorder import read_flight_dump
    from repro.obs.trace import group_traces

    header, segments = read_flight_dump(args.dump)
    if header is not None:
        tracer_info = header.get("tracer") or {}
        print(
            f"flight dump: reason={header.get('reason')} "
            f"traces={header.get('num_traces')} "
            f"process={tracer_info.get('process', '?')} "
            f"dropped={tracer_info.get('dropped', 0)}"
        )
    if not segments:
        print("no trace segments in dump")
        return 0

    grouped = group_traces(segments)
    summaries = []
    for trace_id, parts in grouped.items():
        start = min(part.start for part in parts)
        end = max(part.start + part.duration_s for part in parts)
        summaries.append({
            "trace_id": trace_id,
            "parts": parts,
            "start": start,
            "duration_ms": (end - start) * 1e3,
            "spans": sum(len(part.spans) for part in parts),
            "processes": sorted({part.process for part in parts}),
            "status": (
                "error"
                if any(part.status == "error" for part in parts)
                else "ok"
            ),
            "retained": next(
                (part.retained for part in parts if part.retained), None
            ),
        })
    summaries.sort(key=lambda row: row["duration_ms"], reverse=True)

    top = summaries[: max(args.top, 1)]
    print(ascii_table(
        ["trace", "ms", "segments", "spans", "processes", "status", "retained"],
        [
            [
                f"{row['trace_id']:016x}",
                round(row["duration_ms"], 3),
                len(row["parts"]),
                row["spans"],
                ",".join(row["processes"]),
                row["status"],
                row["retained"] or "-",
            ]
            for row in top
        ],
        title=f"slowest traces ({len(grouped)} total)",
    ))

    slowest = summaries[0]
    print(
        f"critical path — trace {slowest['trace_id']:016x} "
        f"({slowest['duration_ms']:.3f} ms, status={slowest['status']}, "
        f"retained={slowest['retained'] or '-'})"
    )
    path_rows: list[list[object]] = []
    for part in slowest["parts"]:
        offset_ms = (part.start - slowest["start"]) * 1e3
        path_rows.append([
            f"{offset_ms:+.3f}",
            part.process,
            f"{part.name}",
            round(part.duration_s * 1e3, 3),
            part.status,
            "",
        ])
        for span in sorted(part.spans, key=lambda span: span.offset_s):
            path_rows.append([
                f"{(offset_ms + span.offset_s * 1e3):+.3f}",
                "",
                f"  {span.name} [{span.kind}]",
                round(span.seconds * 1e3, 3),
                "",
                f"x{span.count}",
            ])
    print(ascii_table(
        ["offset ms", "process", "segment / span", "ms", "status", "count"],
        path_rows,
    ))

    stage_totals: dict[str, tuple[float, int]] = {}
    for part in slowest["parts"]:
        for span in part.spans:
            if span.kind == "stage":
                total, count = stage_totals.get(span.name, (0.0, 0))
                stage_totals[span.name] = (
                    total + span.seconds, count + span.count
                )
    if stage_totals:
        total_all = sum(total for total, _count in stage_totals.values())
        print(ascii_table(
            ["stage", "ms", "count", "% of stage time"],
            [
                [
                    name,
                    round(total * 1e3, 3),
                    count,
                    round(100.0 * total / total_all, 1) if total_all else 0.0,
                ]
                for name, (total, count) in sorted(
                    stage_totals.items(), key=lambda item: -item[1][0]
                )
            ],
            title="per-stage attribution (slowest trace)",
        ))
    return 0


def _cmd_effectiveness(args: argparse.Namespace) -> int:
    from repro.baselines.base import BaselineState
    from repro.baselines.content_only import ContentOnlyRecommender
    from repro.baselines.engine_adapter import SystemRecommender
    from repro.baselines.popularity import PopularityRecommender
    from repro.baselines.profile_only import ProfileOnlyRecommender
    from repro.baselines.random_rec import RandomRecommender
    from repro.eval.harness import EffectivenessHarness

    workload = _workload_from_args(args)

    def state() -> BaselineState:
        return BaselineState(
            workload.build_corpus(),
            {user.user_id: user.home for user in workload.users},
        )

    recommenders = {
        "system": SystemRecommender(state()),
        "content-only": ContentOnlyRecommender(state()),
        "profile-only": ProfileOnlyRecommender(state()),
        "popularity": PopularityRecommender(state()),
        "random": RandomRecommender(state()),
    }
    if args.with_lda:
        from repro.baselines.lda_rec import LdaRecommender

        recommenders["lda"] = LdaRecommender.fit_on_posts(
            state(),
            [post.text for post in workload.posts],
            num_topics=workload.config.num_topics,
            iterations=args.lda_iterations,
        )
    harness = EffectivenessHarness(
        workload, k=args.k, max_posts=args.max_posts, fanout_cap=args.fanout_cap
    )
    results = harness.evaluate(recommenders)
    print(ascii_table(
        ["method", "P@k", "R@k", "F1", "NDCG", "MAP", "samples"],
        [result.row() for result in results],
        title=f"Effectiveness (k={args.k})",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Context-aware advertisement recommendation for "
        "high-speed social news feeding (ICDE'16 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate and save a workload")
    _add_generation_flags(generate)
    generate.add_argument("--out", required=True, help="output directory")
    generate.set_defaults(handler=_cmd_generate)

    stats = commands.add_parser("stats", help="describe a saved workload")
    stats.add_argument("--workload", required=True)
    stats.set_defaults(handler=_cmd_stats)

    replay = commands.add_parser("replay", help="replay a post stream, measure")
    _add_generation_flags(replay)
    replay.add_argument("--workload", help="saved workload directory")
    replay.add_argument(
        "--mode",
        choices=[mode.value for mode in EngineMode],
        default="shared",
    )
    replay.add_argument(
        "--searcher",
        choices=list(SEARCHER_KINDS),
        default="ta",
        help="top-k searcher for every index probe; 'vector' runs the "
        "compact numpy hot path, the rest are the pure-Python oracles",
    )
    replay.add_argument("--k", type=int, default=10)
    replay.add_argument("--limit", type=int, default=None)
    replay.add_argument(
        "--approximate",
        action="store_true",
        help="disable the exact fallback (production mode)",
    )
    replay.add_argument("--no-charging", action="store_true")
    replay.add_argument(
        "--personalize",
        choices=["static", "linucb"],
        default="static",
        help="slate rerank strategy: 'linucb' layers a per-ad contextual "
        "bandit over the mode's personalisation, learning online from "
        "click feedback (default: the static paper scoring)",
    )
    replay.add_argument(
        "--alpha-ucb",
        type=float,
        default=0.5,
        help="LinUCB exploration width; 0 disables the bonus entirely "
        "(the slate is then byte-identical to --personalize static)",
    )
    replay.add_argument(
        "--linucb-sync",
        type=float,
        default=300.0,
        help="bandit sync-epoch length in stream seconds: updates fold "
        "into the serving snapshot at each epoch boundary",
    )
    replay.add_argument(
        "--workers",
        type=int,
        default=0,
        help="run N user shards as real worker processes behind the "
        "router (0 = in-process single engine); incompatible with the "
        "--live/--slo/--qos dashboards",
    )
    replay.add_argument(
        "--batch",
        type=int,
        default=32,
        help="posts per dispatch batch on the --workers path (IPC is "
        "amortised per batch)",
    )
    replay.add_argument(
        "--live",
        action="store_true",
        help="attach a live metrics registry; print one dashboard line "
        "per sampling interval of stream time",
    )
    replay.add_argument(
        "--slo",
        action="store_true",
        help="grade each interval against SLO targets and end with an "
        "OK/DEGRADED/OVERLOADED verdict (implies --live)",
    )
    replay.add_argument(
        "--interval",
        type=float,
        default=None,
        help="sampling interval in stream seconds (default: stream span / 12)",
    )
    replay.add_argument(
        "--window",
        type=float,
        default=None,
        help="trailing telemetry window in stream seconds (default: 5x interval)",
    )
    replay.add_argument(
        "--slo-p99-ms",
        action="append",
        metavar="STAGE=MS",
        help="per-stage windowed p99 target in ms (repeatable, "
        "e.g. --slo-p99-ms delivery=5)",
    )
    replay.add_argument(
        "--slo-min-dps",
        type=float,
        default=0.0,
        help="deliveries/s floor for the SLO (0 disables)",
    )
    replay.add_argument(
        "--qos",
        action="store_true",
        help="attach the QoS control plane: a degradation ladder stepped "
        "by interval health grades, plus admission control when "
        "--qos-rate is set (implies --live and SLO grading)",
    )
    replay.add_argument(
        "--qos-rate",
        type=float,
        default=0.0,
        help="admission token-bucket rate in deliveries per stream second "
        "(0 disables admission; the ladder still runs)",
    )
    replay.add_argument(
        "--qos-burst-s",
        type=float,
        default=1.0,
        help="admission burst capacity in seconds of rate",
    )
    replay.add_argument(
        "--qos-queue-s",
        type=float,
        default=0.0,
        help="bounded stream-time queue (debt) high-value batches may "
        "borrow into, in seconds of rate",
    )
    replay.add_argument(
        "--qos-floor",
        type=int,
        default=None,
        help="deepest degradation rung the ladder may reach "
        "(default: the full ladder, down to shedding)",
    )
    replay.add_argument(
        "--qos-recover-after",
        type=int,
        default=2,
        help="consecutive OK intervals required to climb back one rung",
    )
    replay.add_argument(
        "--metrics-out",
        default=None,
        help="append one JSON line per interval to this timeseries file "
        "(implies --live)",
    )
    replay.add_argument(
        "--prom-out",
        default=None,
        help="write the final snapshot in Prometheus text exposition "
        "format (implies --live)",
    )
    replay.add_argument(
        "--trace",
        action="store_true",
        help="attach distributed request tracing: head-sample a fraction "
        "of requests, tail-capture errors/slow/shed/degraded ones, and "
        "keep a flight-recorder ring per process (works with --workers)",
    )
    replay.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="RATE",
        help="head-sampling rate in [0, 1] (default 0.01; requires --trace)",
    )
    replay.add_argument(
        "--trace-out",
        default=None,
        help="write retained trace segments as JSONL (requires --trace; "
        "inspect with `repro trace --dump PATH`)",
    )
    replay.add_argument(
        "--flight-out",
        default=None,
        help="flight-recorder dump path, written on SLO breach, worker "
        "crash, or end of run (requires --trace)",
    )
    replay.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="compose a named adversarial scenario over the base stream "
        "(repeatable; flash-crowd, celebrity-spike, budget-burst, "
        "geo-wave, click-flood); switches replay onto the scripted path",
    )
    replay.add_argument(
        "--scenario-seed",
        type=int,
        default=0,
        help="seed for the scenario generators (the workload keeps its "
        "own --seed)",
    )
    replay.add_argument(
        "--record",
        default=None,
        metavar="PATH",
        help="record the scripted stream to a versioned JSONL trace "
        "before driving it",
    )
    replay.add_argument(
        "--replay-trace",
        default=None,
        metavar="PATH",
        help="replay a trace recorded with --record instead of "
        "generating; the workload must match the trace's fingerprint",
    )
    replay.add_argument(
        "--shards",
        type=int,
        default=0,
        help="drive the in-process sharded router with N shards on the "
        "scenario path (0 = single engine; --workers picks the "
        "multiprocess pool instead)",
    )
    replay.set_defaults(handler=_cmd_replay)

    canary = commands.add_parser(
        "canary",
        help="A/B canary rollout: drive control and treatment configs "
        "with one adversarial stream, gate on the cohort's paired diff",
    )
    _add_generation_flags(canary)
    canary.add_argument("--workload", help="saved workload directory")
    canary.add_argument(
        "--mode",
        choices=[mode.value for mode in EngineMode],
        default="shared",
    )
    canary.add_argument(
        "--searcher", choices=list(SEARCHER_KINDS), default="ta"
    )
    canary.add_argument("--k", type=int, default=10)
    canary.add_argument("--limit", type=int, default=None)
    canary.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="adversarial scenario(s) to stress both arms with "
        "(repeatable; default: the base stream alone)",
    )
    canary.add_argument("--scenario-seed", type=int, default=0)
    canary.add_argument(
        "--fraction",
        type=float,
        default=0.1,
        help="fraction of users hashed into the canary cohort",
    )
    canary.add_argument(
        "--canary-seed",
        type=int,
        default=0,
        help="salt for the user->arm hash (rotates the cohort)",
    )
    canary.add_argument(
        "--arm",
        action="append",
        default=None,
        metavar="NAME=VALUE",
        help="EngineConfig override for the treatment arm (repeatable, "
        "e.g. --arm personalize=linucb --arm k=5); no overrides runs "
        "an A/A check",
    )
    canary.add_argument(
        "--shards",
        type=int,
        default=0,
        help="drive both arms on the in-process sharded router with N "
        "shards (0 = single engine)",
    )
    canary.add_argument(
        "--max-revenue-drop",
        type=float,
        default=0.02,
        help="fail the rollout when cohort revenue on treatment falls "
        "more than this fraction below control",
    )
    canary.add_argument(
        "--max-p99-ratio",
        type=float,
        default=None,
        help="fail when treatment post p99 exceeds control by this "
        "factor (off by default: wall-clock is noisy in CI)",
    )
    canary.add_argument(
        "--report-out",
        default=None,
        help="write the structured canary report as JSON",
    )
    canary.set_defaults(handler=_cmd_canary)

    trace = commands.add_parser(
        "trace", help="inspect a flight-recorder dump or trace export"
    )
    trace.add_argument(
        "--dump",
        required=True,
        help="path to a --flight-out dump or --trace-out export",
    )
    trace.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many slowest traces to list",
    )
    trace.set_defaults(handler=_cmd_trace)

    effectiveness = commands.add_parser(
        "effectiveness", help="score the system and baselines vs ground truth"
    )
    _add_generation_flags(effectiveness)
    effectiveness.add_argument("--workload")
    effectiveness.add_argument("--k", type=int, default=10)
    effectiveness.add_argument("--max-posts", type=int, default=150)
    effectiveness.add_argument("--fanout-cap", type=int, default=3)
    effectiveness.add_argument("--with-lda", action="store_true")
    effectiveness.add_argument("--lda-iterations", type=int, default=30)
    effectiveness.set_defaults(handler=_cmd_effectiveness)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
