"""Command-line interface.

Four subcommands cover the library's workflows end-to-end::

    python -m repro generate --users 300 --ads 2000 --posts 300 --out wl/
    python -m repro stats --workload wl/
    python -m repro replay --workload wl/ --mode shared --limit 200
    python -m repro effectiveness --workload wl/ --max-posts 100

``replay`` and ``effectiveness`` also accept generation flags directly
(omit ``--workload``) for one-shot runs.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.config import EngineConfig, EngineMode
from repro.datagen.workload import Workload, WorkloadConfig, generate_workload
from repro.errors import ReproError
from repro.eval.perf import run_perf
from repro.eval.report import ascii_table
from repro.io.serialize import load_workload, save_workload


def _add_generation_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=300)
    parser.add_argument("--ads", type=int, default=2000)
    parser.add_argument("--posts", type=int, default=300)
    parser.add_argument("--topics", type=int, default=20)
    parser.add_argument("--vocab", type=int, default=5000)
    parser.add_argument("--seed", type=int, default=7)


def _workload_from_args(args: argparse.Namespace) -> Workload:
    if getattr(args, "workload", None):
        return load_workload(args.workload)
    return generate_workload(
        WorkloadConfig(
            num_users=args.users,
            num_ads=args.ads,
            num_posts=args.posts,
            num_topics=args.topics,
            vocab_size=args.vocab,
            seed=args.seed,
        )
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    workload = _workload_from_args(args)
    save_workload(args.out, workload)
    print(f"saved workload to {args.out}")
    print(ascii_table(
        ["statistic", "value"],
        [[key, value] for key, value in workload.stats().items()],
    ))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    workload = load_workload(args.workload)
    print(ascii_table(
        ["statistic", "value"],
        [[key, value] for key, value in workload.stats().items()],
        title=f"Workload statistics: {args.workload}",
    ))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    workload = _workload_from_args(args)
    config = EngineConfig(
        mode=EngineMode(args.mode),
        k=args.k,
        exact_fallback=not args.approximate,
        collect_deliveries=False,
        charge_impressions=not args.no_charging,
    )
    result = run_perf(
        workload, config, label=args.mode, limit_posts=args.limit
    )
    print(ascii_table(
        ["metric", "value"],
        [
            ["mode", args.mode],
            ["posts", result.posts],
            ["deliveries", result.deliveries],
            ["deliveries/s", round(result.deliveries_per_s, 1)],
            ["post p50 (ms)", round(result.post_latency_p50_ms, 3)],
            ["post p99 (ms)", round(result.post_latency_p99_ms, 3)],
            ["fallback rate", round(result.fallback_rate, 4)],
            ["impressions", result.impressions],
        ],
        title="Replay summary",
    ))
    return 0


def _cmd_effectiveness(args: argparse.Namespace) -> int:
    from repro.baselines.base import BaselineState
    from repro.baselines.content_only import ContentOnlyRecommender
    from repro.baselines.engine_adapter import SystemRecommender
    from repro.baselines.popularity import PopularityRecommender
    from repro.baselines.profile_only import ProfileOnlyRecommender
    from repro.baselines.random_rec import RandomRecommender
    from repro.eval.harness import EffectivenessHarness

    workload = _workload_from_args(args)

    def state() -> BaselineState:
        return BaselineState(
            workload.build_corpus(),
            {user.user_id: user.home for user in workload.users},
        )

    recommenders = {
        "system": SystemRecommender(state()),
        "content-only": ContentOnlyRecommender(state()),
        "profile-only": ProfileOnlyRecommender(state()),
        "popularity": PopularityRecommender(state()),
        "random": RandomRecommender(state()),
    }
    if args.with_lda:
        from repro.baselines.lda_rec import LdaRecommender

        recommenders["lda"] = LdaRecommender.fit_on_posts(
            state(),
            [post.text for post in workload.posts],
            num_topics=workload.config.num_topics,
            iterations=args.lda_iterations,
        )
    harness = EffectivenessHarness(
        workload, k=args.k, max_posts=args.max_posts, fanout_cap=args.fanout_cap
    )
    results = harness.evaluate(recommenders)
    print(ascii_table(
        ["method", "P@k", "R@k", "F1", "NDCG", "MAP", "samples"],
        [result.row() for result in results],
        title=f"Effectiveness (k={args.k})",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Context-aware advertisement recommendation for "
        "high-speed social news feeding (ICDE'16 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate and save a workload")
    _add_generation_flags(generate)
    generate.add_argument("--out", required=True, help="output directory")
    generate.set_defaults(handler=_cmd_generate)

    stats = commands.add_parser("stats", help="describe a saved workload")
    stats.add_argument("--workload", required=True)
    stats.set_defaults(handler=_cmd_stats)

    replay = commands.add_parser("replay", help="replay a post stream, measure")
    _add_generation_flags(replay)
    replay.add_argument("--workload", help="saved workload directory")
    replay.add_argument(
        "--mode",
        choices=[mode.value for mode in EngineMode],
        default="shared",
    )
    replay.add_argument("--k", type=int, default=10)
    replay.add_argument("--limit", type=int, default=None)
    replay.add_argument(
        "--approximate",
        action="store_true",
        help="disable the exact fallback (production mode)",
    )
    replay.add_argument("--no-charging", action="store_true")
    replay.set_defaults(handler=_cmd_replay)

    effectiveness = commands.add_parser(
        "effectiveness", help="score the system and baselines vs ground truth"
    )
    _add_generation_flags(effectiveness)
    effectiveness.add_argument("--workload")
    effectiveness.add_argument("--k", type=int, default=10)
    effectiveness.add_argument("--max-posts", type=int, default=150)
    effectiveness.add_argument("--fanout-cap", type=int, default=3)
    effectiveness.add_argument("--with-lda", action="store_true")
    effectiveness.add_argument("--lda-iterations", type=int, default=30)
    effectiveness.set_defaults(handler=_cmd_effectiveness)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
