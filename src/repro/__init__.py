"""repro — reproduction of "Context-aware advertisement recommendation for
high-speed social news feeding" (Li, Zhang, Lan & Tan, ICDE 2016).

The package implements, from scratch, a context-aware advertising engine for
high-speed social news feeds together with every substrate it needs: a text
pipeline, a social-graph and feed fan-out simulator, an ad corpus with
budgets and targeting, a pruning top-k ad index, time-decayed user profiles,
baselines, synthetic Twitter-like workloads and an evaluation harness.

Quickstart::

    from repro import ContextAwareRecommender, WorkloadConfig, generate_workload

    workload = generate_workload(WorkloadConfig(num_users=200, num_ads=500))
    rec = ContextAwareRecommender.from_workload(workload)
    result = rec.post(author_id=0, text="great marathon running shoes", timestamp=10.0)
    for delivery in result.deliveries:
        print(delivery.user_id, [s.ad_id for s in delivery.slate])

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reconstructed evaluation suite.
"""

from repro.ads.ad import Ad
from repro.ads.corpus import AdCorpus
from repro.ads.ctr import CtrEstimator
from repro.ads.targeting import TargetingSpec
from repro.cluster.sharded import ShardedEngine
from repro.core.config import EngineConfig, ScoringWeights
from repro.core.engine import AdEngine
from repro.core.recommender import ContextAwareRecommender
from repro.core.scoring import ScoredAd, ScoringModel
from repro.datagen.importer import ImportedTrace, import_tweets
from repro.datagen.workload import Workload, WorkloadConfig, generate_workload
from repro.feed.assembler import AdSlotPolicy, FeedAssembler
from repro.errors import (
    BudgetError,
    ConfigError,
    CorpusError,
    ReproError,
    UnknownAdError,
    UnknownUserError,
)
from repro.geo.point import GeoPoint
from repro.graph.social import SocialGraph
from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.io.serialize import load_workload, save_workload
from repro.obs.tracer import NoopTracer, RecordingTracer
from repro.stream.simulator import FeedSimulator

__version__ = "1.0.0"

__all__ = [
    "Ad",
    "AdCorpus",
    "AdEngine",
    "AdSlotPolicy",
    "BudgetError",
    "CtrEstimator",
    "FeedAssembler",
    "ImportedTrace",
    "NoopTracer",
    "RecordingTracer",
    "ShardedEngine",
    "import_tweets",
    "load_checkpoint",
    "load_workload",
    "save_checkpoint",
    "save_workload",
    "ConfigError",
    "ContextAwareRecommender",
    "CorpusError",
    "EngineConfig",
    "FeedSimulator",
    "GeoPoint",
    "ReproError",
    "ScoredAd",
    "ScoringModel",
    "ScoringWeights",
    "SocialGraph",
    "TargetingSpec",
    "UnknownAdError",
    "UnknownUserError",
    "Workload",
    "WorkloadConfig",
    "generate_workload",
    "__version__",
]
