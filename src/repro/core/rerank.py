"""Per-delivery personalisation with a TA-style exactness certificate.

The additive score has three sources of mass, and each gets its own
candidate list with a proven cutoff on what any *excluded* ad could carry:

1. **content** — the per-message shared probe (computed once per post,
   reused across the fan-out): excluded ads have content <= ``c1``;
2. **profile** — a per-user probe over the ad index with the user's
   interest vector as the query, cached until the user posts again or ads
   are added: excluded ads have profile affinity <= ``c2``;
3. **geo+bid** — the global prefix of ads by ``gamma + delta·bid_norm``
   (user-independent, maintained incrementally): excluded ads carry at most
   ``c3`` of geo+bid mass.

A delivery exactly scores the union of the three lists (a few dozen ads —
no index probe beyond the amortised/cached ones) and takes the top-k. Any
ad outside the union scores at most ``alpha·c1 + beta·c2 + c3``, so when
the personalised k-th score reaches that bound the slate is provably the
true top-k. Otherwise the engine either falls back to one exact
combined-query WAND probe (``exact_fallback=True``) or serves the
approximate slate, as production systems do; experiment F6 measures the
trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.candidates import CandidateSet
from repro.core.scoring import ScoredAd
from repro.core.services import EngineServices
from repro.core.static_list import GlobalStaticTopList
from repro.geo.point import GeoPoint
from repro.index.factory import make_searcher
from repro.util.sparse import SparseVector, dot


@dataclass(frozen=True, slots=True)
class PersonalizedSlate:
    """One user's slate plus how it was produced."""

    slate: tuple[ScoredAd, ...]
    certified: bool
    fell_back: bool


@dataclass(frozen=True, slots=True)
class _ProfileCandidates:
    """Cached per-user profile-probe results."""

    profile_epoch: int
    corpus_add_epoch: int
    entries: tuple[tuple[int, float], ...]  # (ad_id, profile affinity)
    cutoff: float  # bound on the affinity of any ad not in entries


class Personalizer:
    """Turns shared candidates into per-user slates."""

    def __init__(self, services: EngineServices) -> None:
        scoring = services.scoring
        index = services.index
        config = services.config
        self._scoring = scoring
        self._index = index
        self._config = config
        self._exact_fallback = config.exact_fallback
        self._static_list = GlobalStaticTopList(
            scoring.corpus, scoring.weights, config.static_candidates
        )
        self._profile_searcher = make_searcher(config.searcher, index)
        self._profile_cache: dict[int, _ProfileCandidates] = {}

    # -- candidate sources --------------------------------------------------

    def static_candidate_ids(self) -> list[int]:
        """The global geo+bid candidate prefix (third source)."""
        return self._static_list.candidate_ids()

    def static_cutoff(self) -> float:
        """Geo+bid mass bound for ads outside that prefix."""
        return self._static_list.cutoff()

    def profile_candidates(
        self, user_id: int, profile_vec: SparseVector, profile_epoch: int
    ) -> _ProfileCandidates:
        """Per-user profile probe, cached by (profile epoch, corpus adds).

        Retirements do NOT invalidate the cache: affinities never change and
        retired entries are dropped at evaluation time, so the cutoff stays
        an upper bound. Additions do invalidate it (a new ad could beat the
        cutoff).
        """
        corpus_epoch = self._scoring.corpus.add_epoch
        cached = self._profile_cache.get(user_id)
        if (
            cached is not None
            and cached.profile_epoch == profile_epoch
            and cached.corpus_add_epoch == corpus_epoch
        ):
            return cached
        depth = self._config.profile_candidates
        results = self._profile_searcher.search(profile_vec, depth)
        cutoff = 0.0 if len(results) < depth else results[-1].score
        candidates = _ProfileCandidates(
            profile_epoch=profile_epoch,
            corpus_add_epoch=corpus_epoch,
            entries=tuple((entry.item, entry.score) for entry in results),
            cutoff=cutoff,
        )
        self._profile_cache[user_id] = candidates
        return candidates

    # -- the delivery path ------------------------------------------------------

    def slate_for(
        self,
        candidates: CandidateSet,
        message_vec: SparseVector,
        user_id: int,
        profile_vec: SparseVector,
        profile_epoch: int,
        location: GeoPoint | None,
        timestamp: float,
        k: int,
        *,
        allow_fallback: bool = True,
    ) -> PersonalizedSlate:
        """Union-score, certify, and fall back if needed.

        ``allow_fallback=False`` suppresses the certificate-fallback
        exact probe for this delivery even when the engine is configured
        with ``exact_fallback`` — the QoS ladder's serve-approximate
        rung — and the slate is served as-is, certified or not.
        """
        scoring = self._scoring
        corpus = scoring.corpus
        profile_cands = self.profile_candidates(user_id, profile_vec, profile_epoch)

        content_of: dict[int, float] = dict(candidates.entries)
        union: set[int] = set(content_of)
        union.update(ad_id for ad_id, _ in profile_cands.entries)
        union.update(self._static_list.candidate_ids())

        scored: list[ScoredAd] = []
        for ad_id in union:
            content = content_of.get(ad_id)
            if content is None:
                if not corpus.is_active(ad_id):
                    continue
                content = dot(message_vec, corpus.get(ad_id).terms)
            evaluated = scoring.evaluate(
                ad_id, content, profile_vec, location, timestamp
            )
            if evaluated is not None:
                scored.append(evaluated)
        scored.sort(key=lambda entry: (-entry.score, entry.ad_id))
        slate = tuple(scored[:k])

        weights = scoring.weights
        certificate = (
            weights.alpha * candidates.cutoff
            + weights.beta * profile_cands.cutoff
            + self._static_list.cutoff()
        )
        certified = len(slate) == k and slate[-1].score >= certificate
        if certified or not (self._exact_fallback and allow_fallback):
            return PersonalizedSlate(slate=slate, certified=certified, fell_back=False)
        return PersonalizedSlate(
            slate=self.exact_slate(message_vec, profile_vec, location, timestamp, k),
            certified=True,
            fell_back=True,
        )

    def exact_slate(
        self,
        message_vec: SparseVector,
        profile_vec: SparseVector,
        location: GeoPoint | None,
        timestamp: float,
        k: int,
    ) -> tuple[ScoredAd, ...]:
        """One guaranteed-exact combined-query probe (also the per-delivery
        baseline: EngineMode.EXACT routes every delivery here)."""
        scoring = self._scoring
        query = scoring.combined_query(message_vec, profile_vec)
        searcher = make_searcher(
            self._config.searcher,
            self._index,
            static_score=scoring.probe_static_fn(location, timestamp),
            max_static=scoring.max_probe_static,
            filter_fn=scoring.targeting_filter(location, timestamp),
        )
        slate: list[ScoredAd] = []
        for entry in searcher.search(query, k):
            ad_terms = self._index.ad_terms(entry.item)
            content = dot(message_vec, ad_terms)
            slate.append(
                ScoredAd(
                    ad_id=entry.item,
                    score=entry.score,
                    content=content,
                    static=entry.score - scoring.weights.alpha * content,
                )
            )
        return tuple(slate)
