"""Per-delivery personalisation with a TA-style exactness certificate.

The additive score has three sources of mass, and each gets its own
candidate list with a proven cutoff on what any *excluded* ad could carry:

1. **content** — the per-message shared probe (computed once per post,
   reused across the fan-out): excluded ads have content <= ``c1``;
2. **profile** — a per-user probe over the ad index with the user's
   interest vector as the query, cached until the user posts again or ads
   are added: excluded ads have profile affinity <= ``c2``;
3. **geo+bid** — the global prefix of ads by ``gamma + delta·bid_norm``
   (user-independent, maintained incrementally): excluded ads carry at most
   ``c3`` of geo+bid mass.

A delivery exactly scores the union of the three lists (a few dozen ads —
no index probe beyond the amortised/cached ones) and takes the top-k. Any
ad outside the union scores at most ``alpha·c1 + beta·c2 + c3``, so when
the personalised k-th score reaches that bound the slate is provably the
true top-k. Otherwise the engine either falls back to one exact
combined-query WAND probe (``exact_fallback=True``) or serves the
approximate slate, as production systems do; experiment F6 measures the
trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.candidates import CandidateSet
from repro.core.scoring import ScoredAd, StaticRowCache
from repro.core.services import EngineServices
from repro.core.static_list import GlobalStaticTopList
from repro.geo.point import GeoPoint
from repro.index.compact import CompactIndex
from repro.index.factory import make_searcher
from repro.index.vector import VectorSearcher
from repro.util.sparse import SparseVector, dot


@dataclass(frozen=True, slots=True)
class PersonalizedSlate:
    """One user's slate plus how it was produced."""

    slate: tuple[ScoredAd, ...]
    certified: bool
    fell_back: bool


def _exact_topk(scores: np.ndarray, ad_ids: np.ndarray, k: int) -> np.ndarray:
    """Top-``k`` local indices under the tie rule (score desc, id asc).

    Large sets are pre-cut at the k-th score with a linear partition so
    the lexsort only touches actual contenders.
    """
    n = scores.shape[0]
    if n > 4 * k:
        kth = np.partition(scores, n - k)[n - k]
        contenders = np.flatnonzero(scores >= kth)
        order = np.lexsort((ad_ids[contenders], -scores[contenders]))[:k]
        return contenders[order]
    return np.lexsort((ad_ids, -scores))[:k]


@dataclass(frozen=True, slots=True)
class _ProfileCandidates:
    """Cached per-user profile-probe results."""

    profile_epoch: int
    corpus_add_epoch: int
    entries: tuple[tuple[int, float], ...]  # (ad_id, profile affinity)
    cutoff: float  # bound on the affinity of any ad not in entries


class Personalizer:
    """Turns shared candidates into per-user slates."""

    def __init__(self, services: EngineServices) -> None:
        scoring = services.scoring
        index = services.index
        config = services.config
        self._scoring = scoring
        self._index = index
        self._config = config
        self._exact_fallback = config.exact_fallback
        self._static_list = GlobalStaticTopList(
            scoring.corpus, scoring.weights, config.static_candidates
        )
        self._profile_searcher = make_searcher(config.searcher, index)
        self._profile_cache: dict[int, _ProfileCandidates] = {}
        # Vector mode: union scoring runs on the compact mirror via
        # ScoringModel.evaluate_block instead of per-(user, ad) Python.
        self._vector = config.searcher == "vector"
        if self._vector:
            self._compact = CompactIndex.shared(index)
            self._static_cache = StaticRowCache(scoring.corpus, self._compact)
            # Per-event cache: (candidate set, mirror generation) →
            # candidate rows + the dense message vector, shared across
            # the whole fan-out. The strong reference to the candidate
            # set keeps its id stable for the identity check.
            self._event_cache: tuple | None = None
            # Static-list rows, keyed by (list version, generation).
            self._static_rows_cache: tuple | None = None
            # Per-event raw message gather (fallback probes), appended
            # lazily to the event cache; per-user raw profile gathers,
            # keyed by (profile epoch, corpus adds, generation).
            self._message_gather_cache: tuple | None = None
            self._profile_gather_cache: dict[int, tuple] = {}
            # Compact rows of each user's profile-probe entries, keyed by
            # the probe object's identity (stable while its cache entry
            # is) and the mirror generation.
            self._profile_rows_cache: dict[int, tuple] = {}

    @property
    def batched(self) -> bool:
        """Whether :meth:`slate_batch` is available (vector mode only)."""
        return self._vector

    # -- candidate sources --------------------------------------------------

    def static_candidate_ids(self) -> list[int]:
        """The global geo+bid candidate prefix (third source)."""
        return self._static_list.candidate_ids()

    def static_cutoff(self) -> float:
        """Geo+bid mass bound for ads outside that prefix."""
        return self._static_list.cutoff()

    def profile_candidates(
        self, user_id: int, profile_vec: SparseVector, profile_epoch: int
    ) -> _ProfileCandidates:
        """Per-user profile probe, cached by (profile epoch, corpus adds).

        Retirements do NOT invalidate the cache: affinities never change and
        retired entries are dropped at evaluation time, so the cutoff stays
        an upper bound. Additions do invalidate it (a new ad could beat the
        cutoff).
        """
        corpus_epoch = self._scoring.corpus.add_epoch
        cached = self._profile_cache.get(user_id)
        if (
            cached is not None
            and cached.profile_epoch == profile_epoch
            and cached.corpus_add_epoch == corpus_epoch
        ):
            return cached
        depth = self._config.profile_candidates
        if self._vector:
            # Derive the probe from the cached raw gather instead of a
            # searcher call: same gather, same tie rule, bit-identical
            # entries and cutoff — and the gather is reused for affinity
            # rows and fallbacks. The gather cache key is strictly finer
            # than this cache's, so a miss here is a fresh gather there.
            compact = self._compact
            compact.maybe_compact()
            rows, dots = self._profile_gather(
                user_id, profile_vec, profile_epoch, compact.generation
            )
            ad_ids = compact.ad_ids[rows]
            order = np.lexsort((ad_ids, -dots))[:depth]
            entries = tuple(
                (int(ad_ids[i]), float(dots[i])) for i in order
            )
            cutoff = 0.0 if len(entries) < depth else entries[-1][1]
        else:
            results = self._profile_searcher.search(profile_vec, depth)
            cutoff = 0.0 if len(results) < depth else results[-1].score
            entries = tuple((entry.item, entry.score) for entry in results)
        candidates = _ProfileCandidates(
            profile_epoch=profile_epoch,
            corpus_add_epoch=corpus_epoch,
            entries=entries,
            cutoff=cutoff,
        )
        self._profile_cache[user_id] = candidates
        return candidates

    # -- the delivery path ------------------------------------------------------

    def slate_for(
        self,
        candidates: CandidateSet,
        message_vec: SparseVector,
        user_id: int,
        profile_vec: SparseVector,
        profile_epoch: int,
        location: GeoPoint | None,
        timestamp: float,
        k: int,
        *,
        allow_fallback: bool = True,
    ) -> PersonalizedSlate:
        """Union-score, certify, and fall back if needed.

        ``allow_fallback=False`` suppresses the certificate-fallback
        exact probe for this delivery even when the engine is configured
        with ``exact_fallback`` — the QoS ladder's serve-approximate
        rung — and the slate is served as-is, certified or not.
        """
        if self._vector:
            return self._slate_for_vector(
                candidates,
                message_vec,
                user_id,
                profile_vec,
                profile_epoch,
                location,
                timestamp,
                k,
                allow_fallback=allow_fallback,
            )
        scoring = self._scoring
        corpus = scoring.corpus
        profile_cands = self.profile_candidates(user_id, profile_vec, profile_epoch)

        content_of: dict[int, float] = dict(candidates.entries)
        union: set[int] = set(content_of)
        union.update(ad_id for ad_id, _ in profile_cands.entries)
        union.update(self._static_list.candidate_ids())

        scored: list[ScoredAd] = []
        for ad_id in union:
            content = content_of.get(ad_id)
            if content is None:
                if not corpus.is_active(ad_id):
                    continue
                content = dot(message_vec, corpus.get(ad_id).terms)
            evaluated = scoring.evaluate(
                ad_id, content, profile_vec, location, timestamp
            )
            if evaluated is not None:
                scored.append(evaluated)
        scored.sort(key=lambda entry: (-entry.score, entry.ad_id))
        slate = tuple(scored[:k])

        weights = scoring.weights
        certificate = (
            weights.alpha * candidates.cutoff
            + weights.beta * profile_cands.cutoff
            + self._static_list.cutoff()
        )
        certified = len(slate) == k and slate[-1].score >= certificate
        if certified or not (self._exact_fallback and allow_fallback):
            return PersonalizedSlate(slate=slate, certified=certified, fell_back=False)
        return PersonalizedSlate(
            slate=self.exact_slate(message_vec, profile_vec, location, timestamp, k),
            certified=True,
            fell_back=True,
        )

    # -- the vector (compact-mirror) delivery path ---------------------------

    def _candidate_block(
        self, candidates: CandidateSet, message_vec: SparseVector, generation: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(candidate rows, dense message vector), cached per event.

        Keyed by candidate-set identity (held strongly, so the id cannot
        be recycled mid-cache) and mirror generation — a compaction
        between deliveries of one fan-out re-derives the rows from the
        stable ad ids.
        """
        cached = self._event_cache
        if (
            cached is not None
            and cached[0] is candidates
            and cached[1] == generation
        ):
            return cached[2], cached[3]
        compact = self._compact
        rows = compact.rows_of_present(ad_id for ad_id, _ in candidates.entries)
        dense_message = compact.dense_query(message_vec)
        self._event_cache = (candidates, generation, rows, dense_message)
        return rows, dense_message

    def _static_list_rows(self, generation: int) -> np.ndarray:
        """Compact rows of the global geo+bid prefix, version-cached."""
        version = self._static_list.version
        cached = self._static_rows_cache
        if cached is not None and cached[0] == version and cached[1] == generation:
            return cached[2]
        rows = self._compact.rows_of_present(self._static_list.candidate_ids())
        self._static_rows_cache = (version, generation, rows)
        return rows

    def _slate_for_vector(
        self,
        candidates: CandidateSet,
        message_vec: SparseVector,
        user_id: int,
        profile_vec: SparseVector,
        profile_epoch: int,
        location: GeoPoint | None,
        timestamp: float,
        k: int,
        *,
        allow_fallback: bool,
    ) -> PersonalizedSlate:
        """The union-score/certify/fall-back path on the compact mirror.

        Same candidate sources, same certificate, same tie rule as the
        oracle path above — but the union is scored as one block:
        content and profile affinity via CSR row dots, activity and
        targeting as masks, statics as array arithmetic.
        """
        scoring = self._scoring
        compact = self._compact
        compact.maybe_compact()
        profile_cands = self.profile_candidates(user_id, profile_vec, profile_epoch)
        # Read after the profile probe: a probe may trigger compaction,
        # and every row cached below must be in the post-rebuild space.
        generation = compact.generation

        candidate_rows, dense_message = self._candidate_block(
            candidates, message_vec, generation
        )
        profile_rows = self._profile_member_rows(
            user_id, profile_cands, generation
        )
        union = np.unique(
            np.concatenate(
                (candidate_rows, profile_rows, self._static_list_rows(generation))
            )
        )
        # Mid-batch retirements clear alive bits without recycling rows,
        # so one mask keeps cached rows honest (the oracle path's
        # corpus.is_active check).
        union = union[compact.alive[union]]

        slate: tuple[ScoredAd, ...] = ()
        if union.shape[0]:
            content = compact.row_dots(union, dense_message)
            if profile_vec:
                affinity = compact.row_dots(
                    union, compact.dense_query(profile_vec)
                )
            else:
                affinity = np.zeros(union.shape[0], dtype=np.float64)
            block = scoring.evaluate_block(
                self._static_cache,
                union,
                compact.ad_ids[union],
                content,
                affinity,
                location,
                timestamp,
            )
            order = np.lexsort((block.ad_ids, -block.score))[:k]
            slate = tuple(
                scoring.scored_ad(
                    int(block.ad_ids[i]),
                    float(block.content[i]),
                    float(block.static[i]),
                )
                for i in order
            )

        weights = scoring.weights
        certificate = (
            weights.alpha * candidates.cutoff
            + weights.beta * profile_cands.cutoff
            + self._static_list.cutoff()
        )
        certified = len(slate) == k and slate[-1].score >= certificate
        if certified or not (self._exact_fallback and allow_fallback):
            return PersonalizedSlate(slate=slate, certified=certified, fell_back=False)
        return PersonalizedSlate(
            slate=self._fallback_slate_vector(
                candidates,
                generation,
                message_vec,
                user_id,
                profile_vec,
                profile_epoch,
                location,
                timestamp,
                k,
            ),
            certified=True,
            fell_back=True,
        )

    # -- the batched (whole fan-out) vector delivery path ---------------------

    def _message_gather(
        self, candidates: CandidateSet, generation: int, message_vec: SparseVector
    ) -> tuple[np.ndarray, np.ndarray]:
        """Raw message gather ``(rows, dots)`` for fallback probes, cached
        per (event, generation) like :meth:`_candidate_block`."""
        cached = self._message_gather_cache
        if (
            cached is not None
            and cached[0] is candidates
            and cached[1] == generation
        ):
            return cached[2], cached[3]
        rows, dots = self._compact.gather(message_vec)
        self._message_gather_cache = (candidates, generation, rows, dots)
        return rows, dots

    def _profile_gather(
        self,
        user_id: int,
        profile_vec: SparseVector,
        profile_epoch: int,
        generation: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Raw profile gather ``(rows, dots)`` over the full index.

        Cached until the user posts again, ads are added, or the mirror
        compacts; dead rows are re-masked by the caller at use time, so
        retirements do not invalidate (affinities never change).
        """
        add_epoch = self._scoring.corpus.add_epoch
        cached = self._profile_gather_cache.get(user_id)
        if (
            cached is not None
            and cached[0] == profile_epoch
            and cached[1] == add_epoch
            and cached[2] == generation
        ):
            return cached[3], cached[4]
        rows, dots = self._compact.gather(profile_vec)
        self._profile_gather_cache[user_id] = (
            profile_epoch, add_epoch, generation, rows, dots,
        )
        return rows, dots

    def _profile_member_rows(
        self, user_id: int, cands: _ProfileCandidates, generation: int
    ) -> np.ndarray:
        """Compact rows of a user's profile-probe entries, cached with
        the probe itself (retired entries drop out via the row lookup)."""
        cached = self._profile_rows_cache.get(user_id)
        if (
            cached is not None
            and cached[0] is cands
            and cached[1] == generation
        ):
            return cached[2]
        rows = self._compact.rows_of_present(
            ad_id for ad_id, _ in cands.entries
        )
        self._profile_rows_cache[user_id] = (cands, generation, rows)
        return rows

    def _fallback_slate_vector(
        self,
        candidates: CandidateSet,
        generation: int,
        message_vec: SparseVector,
        user_id: int,
        profile_vec: SparseVector,
        profile_epoch: int,
        location: GeoPoint | None,
        timestamp: float,
        k: int,
    ) -> tuple[ScoredAd, ...]:
        """One exact combined-query probe built from cached gathers.

        The combined score ``alpha·content + beta·affinity`` is assembled
        from the per-event message gather and the per-user profile gather
        instead of re-walking the postings per delivery; statics and
        targeting are the same vectorized block as the probe path.
        """
        scoring = self._scoring
        compact = self._compact
        weights = scoring.weights
        message_rows, message_dots = self._message_gather(
            candidates, generation, message_vec
        )
        # Mid-fanout retirements (budget exhaustion under charging) clear
        # alive bits after the cached gather was taken.
        live = compact.alive[message_rows]
        if not live.all():
            message_rows = message_rows[live]
            message_dots = message_dots[live]
        if weights.beta > 0.0 and profile_vec:
            profile_rows, profile_dots = self._profile_gather(
                user_id, profile_vec, profile_epoch, generation
            )
            live = compact.alive[profile_rows]
            if not live.all():
                profile_rows = profile_rows[live]
                profile_dots = profile_dots[live]
            rows = np.union1d(message_rows, profile_rows)
        else:
            profile_rows = profile_dots = None
            rows = message_rows
        if not rows.shape[0]:
            return ()
        combined = np.zeros(rows.shape[0], dtype=np.float64)
        positions = np.searchsorted(rows, message_rows)
        combined[positions] = weights.alpha * message_dots
        if profile_rows is not None:
            positions = np.searchsorted(rows, profile_rows)
            combined[positions] += weights.beta * profile_dots
        ad_ids = compact.ad_ids[rows]
        static_block = scoring.probe_static_block(
            self._static_cache, location, timestamp
        )
        keep, statics = static_block(rows, ad_ids)
        scores = combined + statics
        kept = np.flatnonzero(keep)
        if not kept.shape[0]:
            return ()
        order = kept[np.lexsort((ad_ids[kept], -scores[kept]))[:k]]
        index = self._index
        slate: list[ScoredAd] = []
        for i in order:
            ad_id = int(ad_ids[i])
            content = dot(message_vec, index.ad_terms(ad_id))
            score = float(scores[i])
            slate.append(
                ScoredAd(
                    ad_id=ad_id,
                    score=score,
                    content=content,
                    static=score - weights.alpha * content,
                )
            )
        return tuple(slate)

    def slate_batch(
        self,
        candidates: CandidateSet,
        message_vec: SparseVector,
        followers: list[tuple[int, SparseVector, int, GeoPoint | None]],
        timestamp: float,
        k: int,
    ) -> list[PersonalizedSlate]:
        """The whole fan-out of one event as one candidate matrix.

        ``followers`` is ``(user_id, profile_vec, profile_epoch,
        location)`` per follower. One message gather plus one cached
        profile gather per follower cover every row any slate can
        contain — content, affinity, targeting and bid statics are
        evaluated once over that union, and the approximate slate *and*
        the exact fallback are both cut from the same arrays, so an
        uncertified delivery costs one extra mask + top-k instead of a
        fresh probe. Slates, certification decisions and fallbacks are
        elementwise identical to calling :meth:`slate_for` per follower —
        the caller guarantees no corpus mutation happens mid-batch (no
        charging, no CTR feedback).
        """
        scoring = self._scoring
        compact = self._compact
        compact.maybe_compact()
        generation = compact.generation
        # Probes derive from the same cached gathers used below, so they
        # cannot trigger a compaction after the generation snapshot.
        profile_cands = [
            self.profile_candidates(user_id, profile_vec, profile_epoch)
            for user_id, profile_vec, profile_epoch, _ in followers
        ]
        candidate_rows, _ = self._candidate_block(
            candidates, message_vec, generation
        )
        static_rows = self._static_list_rows(generation)
        message_rows, message_dots = self._message_gather(
            candidates, generation, message_vec
        )

        count = len(followers)
        weights = scoring.weights
        static_cutoff = self._static_list.cutoff()
        fallback_ok = self._exact_fallback

        # Alive-masked raw profile gathers: every row with affinity > 0,
        # for the keep floor, the affinity term and the fallback row set.
        profile_gathers: list[tuple[np.ndarray, np.ndarray] | None] = []
        for user_id, profile_vec, profile_epoch, _ in followers:
            if profile_vec:
                rows, dots = self._profile_gather(
                    user_id, profile_vec, profile_epoch, generation
                )
                live = compact.alive[rows]
                if not live.all():
                    rows = rows[live]
                    dots = dots[live]
                profile_gathers.append((rows, dots))
            else:
                profile_gathers.append(None)

        # Everything below works in the full row space of the mirror —
        # scatters and mask writes are direct row indexing, no unions or
        # searchsorted. Per event the shared pieces (content, bid, time
        # mask) are row vectors; per follower only 1-D boolean masks plus
        # float math on the kept subset, so no (F × rows) matrices are
        # ever materialised. Dead rows have zero content/affinity (the
        # gathers above are alive-masked) and unmarked memberships, so
        # they can never be selected.
        ad_ids = compact.ad_ids
        size = ad_ids.shape[0]
        results: list[PersonalizedSlate] = []
        cache = self._static_cache
        if size:
            content = np.zeros(size, dtype=np.float64)
            content[message_rows] = message_dots
            content_floor = content > 0.0
            bid = scoring.fanout_bid_block(cache, ad_ids, timestamp)
            time_keep = cache.time_keep_full(timestamp)
            # Membership for the approximate slate: every follower sees
            # the shared candidate and static rows; the profile-probe rows
            # are theirs alone. The fallback row set is the raw message ∪
            # profile matches instead.
            shared = np.zeros(size, dtype=bool)
            shared[candidate_rows] = True
            shared[static_rows] = True
            message_member = np.zeros(size, dtype=bool)
            message_member[message_rows] = True

        for i, (user_id, profile_vec, profile_epoch, location) in enumerate(
            followers
        ):
            slate: tuple[ScoredAd, ...] = ()
            if size:
                gathered = profile_gathers[i]
                affinity = np.zeros(size, dtype=np.float64)
                if gathered is not None:
                    affinity[gathered[0]] = gathered[1]
                targeted = cache.targeting_full(location)[0] & time_keep
                member = shared.copy()
                member[
                    self._profile_member_rows(
                        user_id, profile_cands[i], generation
                    )
                ] = True
                kept = np.flatnonzero(
                    (content_floor | (affinity > 0.0)) & targeted & member
                )
                if kept.shape[0]:
                    static_kept, score_kept = scoring.fanout_scores(
                        cache, location, content, affinity, bid, kept
                    )
                    chosen = _exact_topk(score_kept, ad_ids[kept], k)
                    slate = tuple(
                        ScoredAd(
                            ad_id=int(ad_ids[kept[j]]),
                            score=float(score_kept[j]),
                            content=float(content[kept[j]]),
                            static=float(static_kept[j]),
                        )
                        for j in chosen
                    )
            certificate = (
                weights.alpha * candidates.cutoff
                + weights.beta * profile_cands[i].cutoff
                + static_cutoff
            )
            certified = len(slate) == k and slate[-1].score >= certificate
            if certified or not fallback_ok:
                results.append(
                    PersonalizedSlate(
                        slate=slate, certified=certified, fell_back=False
                    )
                )
                continue
            # Exact fallback from the same arrays: the combined probe's
            # row set is the raw message ∪ profile matches under the
            # targeting mask alone (a probe has no content/affinity
            # floor — any matching row can win on statics).
            exact: tuple[ScoredAd, ...] = ()
            if size:
                member = message_member.copy()
                if weights.beta > 0.0 and gathered is not None:
                    member[gathered[0]] = True
                kept = np.flatnonzero(targeted & member)
                if kept.shape[0]:
                    static_kept, score_kept = scoring.fanout_scores(
                        cache, location, content, affinity, bid, kept
                    )
                    chosen = _exact_topk(score_kept, ad_ids[kept], k)
                    entries = []
                    for j in chosen:
                        row = kept[j]
                        content_j = float(content[row])
                        score_j = float(score_kept[j])
                        entries.append(
                            ScoredAd(
                                ad_id=int(ad_ids[row]),
                                score=score_j,
                                content=content_j,
                                static=score_j - weights.alpha * content_j,
                            )
                        )
                    exact = tuple(entries)
            results.append(
                PersonalizedSlate(slate=exact, certified=True, fell_back=True)
            )
        return results

    def exact_slate(
        self,
        message_vec: SparseVector,
        profile_vec: SparseVector,
        location: GeoPoint | None,
        timestamp: float,
        k: int,
    ) -> tuple[ScoredAd, ...]:
        """One guaranteed-exact combined-query probe (also the per-delivery
        baseline: EngineMode.EXACT routes every delivery here)."""
        scoring = self._scoring
        query = scoring.combined_query(message_vec, profile_vec)
        if self._vector:
            # The block form evaluates targeting + statics for a whole
            # chunk of the content-ordered walk at once; the shared
            # mirror makes per-probe construction free.
            searcher = VectorSearcher(
                self._index,
                static_block=scoring.probe_static_block(
                    self._static_cache, location, timestamp
                ),
                max_static=scoring.max_probe_static,
                compact=self._compact,
            )
        else:
            searcher = make_searcher(
                self._config.searcher,
                self._index,
                static_score=scoring.probe_static_fn(location, timestamp),
                max_static=scoring.max_probe_static,
                filter_fn=scoring.targeting_filter(location, timestamp),
            )
        slate: list[ScoredAd] = []
        for entry in searcher.search(query, k):
            ad_terms = self._index.ad_terms(entry.item)
            content = dot(message_vec, ad_terms)
            slate.append(
                ScoredAd(
                    ad_id=entry.item,
                    score=entry.score,
                    content=content,
                    static=entry.score - scoring.weights.alpha * content,
                )
            )
        return tuple(slate)
