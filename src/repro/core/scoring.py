"""The ranking function and its pruning-safe upper bounds.

One :class:`ScoringModel` instance is shared by every pipeline variant and
every baseline so comparisons are apples-to-apples. The model exposes three
views of the same additive score:

* component scores (content / profile / geo / bid) for a known candidate;
* a *static score function* over ad ids — the query-independent part an
  index probe adds on top of the content dot product;
* a *combined query vector* ``alpha·message + beta·profile`` that folds the
  profile term into the dot product, which is what makes an exact one-probe
  evaluation possible.

Matching semantics (the "relevance floor"): an ad is a candidate for a
delivery only if it shares at least one term with the combined query, i.e.
has non-zero content or profile affinity. Ads with zero affinity are never
served, no matter their bid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.ads.budget import BudgetManager
from repro.ads.corpus import AdCorpus
from repro.ads.ctr import QUALITY_CAP, CtrEstimator
from repro.ads.targeting import SECONDS_PER_DAY
from repro.core.config import ScoringWeights
from repro.geo.point import EARTH_RADIUS_KM, GeoPoint
from repro.util.sparse import MutableSparseVector, SparseVector, dot

if TYPE_CHECKING:
    from repro.index.compact import CompactIndex


@dataclass(frozen=True, slots=True)
class ScoredAd:
    """One slate entry: ad id, total score, and its two halves."""

    ad_id: int
    score: float
    content: float
    static: float


@dataclass(frozen=True, slots=True)
class ScoredBlock:
    """Vectorized evaluation of a candidate block (surviving rows only)."""

    ad_ids: np.ndarray  # int64
    content: np.ndarray  # float64
    static: np.ndarray  # float64
    score: np.ndarray  # float64

    def __len__(self) -> int:
        return int(self.ad_ids.shape[0])


class StaticRowCache:
    """Query-independent per-row features for the compact hot path.

    Mirrors the static inputs of :meth:`ScoringModel.evaluate` into
    row-indexed arrays: the raw bid (normalised against the live
    ``max_bid`` at evaluation time, matching
    :meth:`~repro.ads.corpus.AdCorpus.normalized_bid`), per-row targeting
    masks, and the targeting geometry itself — every circle as a flat
    ``(row, lat, lon, radius)`` record and every time window as a flat
    ``(row, start, end)`` record, both kept sorted by row so a block's
    circles are one ``searchsorted`` gather away. That lets
    :meth:`targeting_block` evaluate the geo/time predicate and the
    proximity score for a whole candidate block with one vectorized
    haversine instead of per-ad Python calls. Synced lazily: a compaction
    (generation bump) resets the arrays, appended rows extend them.
    """

    def __init__(self, corpus: AdCorpus, compact: "CompactIndex") -> None:
        self._corpus = corpus
        self._compact = compact
        self._generation = -1
        self._synced_rows = 0
        self._bids = np.zeros(0, dtype=np.float64)
        self._untargeted = np.zeros(0, dtype=bool)
        self._geo_targeted = np.zeros(0, dtype=bool)
        self._time_targeted = np.zeros(0, dtype=bool)
        self._specs: list[object] = []
        # Flat targeting geometry, staged in lists (append-friendly) and
        # flattened to arrays on demand. Row tags are ascending because
        # sync always visits rows in order.
        self._geo_stage: list[tuple[int, float, float, float]] = []
        self._time_stage: list[tuple[int, float, float]] = []
        self._flat_dirty = True
        self._geo_rows = np.zeros(0, dtype=np.int64)
        self._geo_lat = np.zeros(0, dtype=np.float64)
        self._geo_lon = np.zeros(0, dtype=np.float64)
        self._geo_cos = np.zeros(0, dtype=np.float64)
        self._geo_radius = np.zeros(0, dtype=np.float64)
        self._time_rows = np.zeros(0, dtype=np.int64)
        self._time_start = np.zeros(0, dtype=np.float64)
        self._time_end = np.zeros(0, dtype=np.float64)
        # Full-corpus targeting results, cached per location (keyed by
        # coordinates) and for the event timestamp. ``_version`` bumps
        # whenever the row space changes, invalidating both.
        self._version = 0
        self._full_geo: dict[
            tuple[float, float] | None, tuple[int, np.ndarray, np.ndarray]
        ] = {}
        self._full_time: tuple[float, int, np.ndarray] | None = None

    def sync(self) -> None:
        compact = self._compact
        if self._generation != compact.generation:
            self._generation = compact.generation
            self._synced_rows = 0
            self._bids = np.zeros(compact.num_rows, dtype=np.float64)
            self._untargeted = np.zeros(compact.num_rows, dtype=bool)
            self._geo_targeted = np.zeros(compact.num_rows, dtype=bool)
            self._time_targeted = np.zeros(compact.num_rows, dtype=bool)
            self._specs = [None] * compact.num_rows
            self._geo_stage = []
            self._time_stage = []
            self._flat_dirty = True
            self._version += 1
            self._full_geo.clear()
            self._full_time = None
        num_rows = compact.num_rows
        if self._synced_rows >= num_rows:
            return
        self._version += 1
        if self._bids.shape[0] < num_rows:
            self._bids = _grown(self._bids, num_rows, np.float64)
            self._untargeted = _grown(self._untargeted, num_rows, bool)
            self._geo_targeted = _grown(self._geo_targeted, num_rows, bool)
            self._time_targeted = _grown(self._time_targeted, num_rows, bool)
            self._specs.extend([None] * (num_rows - len(self._specs)))
        corpus = self._corpus
        ad_ids = compact.ad_ids
        for row in range(self._synced_rows, num_rows):
            ad = corpus.get(int(ad_ids[row]))
            self._bids[row] = ad.bid
            spec = ad.targeting
            self._untargeted[row] = spec.is_untargeted
            self._specs[row] = spec
            if spec.circles:
                self._geo_targeted[row] = True
                for center, radius in spec.circles:
                    self._geo_stage.append(
                        (
                            row,
                            math.radians(center.lat),
                            math.radians(center.lon),
                            radius,
                        )
                    )
                self._flat_dirty = True
            if spec.time_windows:
                self._time_targeted[row] = True
                for window in spec.time_windows:
                    self._time_stage.append(
                        (row, window.start_hour, window.end_hour)
                    )
                self._flat_dirty = True
        self._synced_rows = num_rows

    def _flatten(self) -> None:
        if not self._flat_dirty:
            return
        geo = self._geo_stage
        self._geo_rows = np.fromiter(
            (rec[0] for rec in geo), dtype=np.int64, count=len(geo)
        )
        self._geo_lat = np.fromiter(
            (rec[1] for rec in geo), dtype=np.float64, count=len(geo)
        )
        self._geo_lon = np.fromiter(
            (rec[2] for rec in geo), dtype=np.float64, count=len(geo)
        )
        self._geo_radius = np.fromiter(
            (rec[3] for rec in geo), dtype=np.float64, count=len(geo)
        )
        self._geo_cos = np.cos(self._geo_lat)
        # Latitude half-band (radians) per circle for the coarse prefilter:
        # haversine distance >= R·|Δlat| exactly, so a circle whose center
        # latitude is further than radius/R (plus 1% slack, orders of
        # magnitude above float error) can never contain the user.
        self._geo_band = self._geo_radius / EARTH_RADIUS_KM * 1.01
        windows = self._time_stage
        self._time_rows = np.fromiter(
            (rec[0] for rec in windows), dtype=np.int64, count=len(windows)
        )
        self._time_start = np.fromiter(
            (rec[1] for rec in windows), dtype=np.float64, count=len(windows)
        )
        self._time_end = np.fromiter(
            (rec[2] for rec in windows), dtype=np.float64, count=len(windows)
        )
        self._flat_dirty = False

    def bids(self, rows: np.ndarray) -> np.ndarray:
        return self._bids[rows]

    def bids_full(self) -> np.ndarray:
        """Raw bids for every synced row (a view — do not mutate)."""
        return self._bids[: self._synced_rows]

    def untargeted(self, rows: np.ndarray) -> np.ndarray:
        return self._untargeted[rows]

    def spec(self, row: int):
        return self._specs[row]

    def targeting_full(
        self, location: GeoPoint | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Geo predicate + proximity for one location over *every* row.

        Returns ``(geo_keep, proximity)`` of length ``num_rows``, cached
        per location until the row space changes — followers recur across
        events, so one haversine pass over all circles serves every later
        delivery to the same user. The cache is cleared past 512 distinct
        locations to bound memory.
        """
        key = (
            None if location is None else (location.lat, location.lon)
        )
        cached = self._full_geo.get(key)
        if cached is not None and cached[0] == self._version:
            return cached[1], cached[2]
        size = self._synced_rows
        geo_mask = self._geo_targeted[:size]
        keep = np.ones(size, dtype=bool)
        proximity = np.ones(size, dtype=np.float64)
        if location is None:
            keep &= ~geo_mask
            proximity[geo_mask] = 0.0
        else:
            self._flatten()
            lat2 = math.radians(location.lat)
            # Coarse prefilter: only circles whose latitude band contains
            # the user can match. The surviving circles go through the
            # exact haversine unchanged (subsetting does not perturb any
            # float value), so results are identical to the full pass.
            near = np.flatnonzero(
                np.abs(lat2 - self._geo_lat) <= self._geo_band
            )
            rows = self._geo_rows[near]
            proximity[geo_mask] = 0.0
            keep = ~geo_mask
            if rows.shape[0]:
                # Same arithmetic, same operation order as
                # repro.geo.point.haversine_km, elementwise.
                lon2 = math.radians(location.lon)
                dlat = lat2 - self._geo_lat[near]
                dlon = lon2 - self._geo_lon[near]
                sin_dlat = np.sin(dlat / 2.0)
                sin_dlon = np.sin(dlon / 2.0)
                h = (
                    sin_dlat * sin_dlat
                    + self._geo_cos[near] * math.cos(lat2) * sin_dlon * sin_dlon
                )
                h = np.minimum(1.0, np.maximum(0.0, h))
                distance = 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(h))
                radius = self._geo_radius[near]
                inside = distance <= radius
                hit_rows = rows[inside]
                falloff = 1.0 - distance[inside] / radius[inside]
                if hit_rows.shape[0]:
                    # Circles are stored sorted by row, so matches group
                    # into runs: one reduceat takes each row's best circle
                    # (ufunc.at would be an order of magnitude slower).
                    boundary = np.empty(hit_rows.shape[0], dtype=bool)
                    boundary[0] = True
                    np.not_equal(
                        hit_rows[1:], hit_rows[:-1], out=boundary[1:]
                    )
                    starts = np.flatnonzero(boundary)
                    matched_rows = hit_rows[starts]
                    proximity[matched_rows] = np.maximum.reduceat(
                        falloff, starts
                    )
                    keep[matched_rows] = True
        if len(self._full_geo) >= 512:
            self._full_geo.clear()
        self._full_geo[key] = (self._version, keep, proximity)
        return keep, proximity

    def time_keep_full(self, timestamp: float) -> np.ndarray:
        """Time-window predicate over every row, cached for the event
        timestamp (one fan-out shares it across followers and probes)."""
        cached = self._full_time
        if (
            cached is not None
            and cached[0] == timestamp
            and cached[1] == self._version
        ):
            return cached[2]
        size = self._synced_rows
        time_mask = self._time_targeted[:size]
        if not time_mask.any():
            keep = np.ones(size, dtype=bool)
        else:
            self._flatten()
            hour = (timestamp % SECONDS_PER_DAY) / 3600.0
            start = self._time_start
            end = self._time_end
            inside = np.where(
                start < end,
                (start <= hour) & (hour < end),
                (hour >= start) | (hour < end),
            )
            matched = (
                np.bincount(self._time_rows[inside], minlength=size) > 0
            )
            keep = matched | ~time_mask
        self._full_time = (timestamp, self._version, keep)
        return keep

    def targeting_block(
        self,
        rows: np.ndarray,
        location: GeoPoint | None,
        timestamp: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``TargetingSpec.matches`` + ``proximity`` for a block.

        Returns ``(keep, proximity)`` matching the scalar predicates:
        geo-targeted ads need the user inside at least one circle (unknown
        location never matches), time-targeted ads need the hour inside at
        least one window, and proximity is the best-circle linear falloff
        (neutral 1.0 for untargeted ads). A gather from the per-location
        full-corpus cache — a repeat user costs three fancy indexes.
        """
        geo_keep, proximity = self.targeting_full(location)
        keep = geo_keep[rows] & self.time_keep_full(timestamp)[rows]
        return keep, proximity[rows]


def _grown(array: np.ndarray, size: int, dtype) -> np.ndarray:
    out = np.zeros(size, dtype=dtype)
    out[: array.shape[0]] = array
    return out


class ScoringModel:
    """Evaluates ``alpha·content + beta·profile + gamma·geo + delta·bid``."""

    def __init__(
        self,
        corpus: AdCorpus,
        weights: ScoringWeights,
        *,
        budget_manager: BudgetManager | None = None,
        ctr_estimator: CtrEstimator | None = None,
    ) -> None:
        self._corpus = corpus
        self.weights = weights
        self._budget_manager = budget_manager
        self._ctr_estimator = ctr_estimator

    @property
    def ctr_estimator(self) -> CtrEstimator | None:
        return self._ctr_estimator

    @property
    def corpus(self) -> AdCorpus:
        return self._corpus

    @property
    def max_static(self) -> float:
        return self.weights.max_static

    @property
    def max_probe_static(self) -> float:
        return self.weights.max_probe_static

    # -- component scores ----------------------------------------------------

    def bid_score(self, ad_id: int, timestamp: float) -> float:
        """Pacing- and quality-adjusted normalised bid in [0, 1].

        With a CTR estimator attached the quality multiplier (in
        [0, QUALITY_CAP]) is folded in and renormalised by the cap, so the
        term never exceeds ``normalized_bid`` — every pruning bound built
        from raw bids stays admissible.
        """
        normalized = self._corpus.normalized_bid(ad_id)
        if self._budget_manager is not None:
            normalized *= self._budget_manager.pacing_multiplier(ad_id, timestamp)
        if self._ctr_estimator is not None:
            normalized *= (
                self._ctr_estimator.quality_multiplier(ad_id) / QUALITY_CAP
            )
        return normalized

    def static_score(
        self,
        ad_id: int,
        profile_vec: SparseVector,
        location: GeoPoint | None,
        timestamp: float,
    ) -> float | None:
        """The user-dependent, message-independent part of the score.

        Returns None when the ad's targeting predicate rejects this user
        and time — the ad must not be served at all.
        """
        ad = self._corpus.get(ad_id)
        if not ad.targeting.matches(location, timestamp):
            return None
        profile_affinity = dot(profile_vec, ad.terms) if profile_vec else 0.0
        return (
            self.weights.beta * profile_affinity
            + self.weights.gamma * ad.targeting.proximity(location)
            + self.weights.delta * self.bid_score(ad_id, timestamp)
        )

    def probe_static_fn(
        self, location: GeoPoint | None, timestamp: float
    ) -> Callable[[int], float]:
        """Static function for exact index probes (profile folded into the
        query): ``gamma·geo + delta·bid`` for one user and time."""

        def static(ad_id: int) -> float:
            ad = self._corpus.get(ad_id)
            return (
                self.weights.gamma * ad.targeting.proximity(location)
                + self.weights.delta * self.bid_score(ad_id, timestamp)
            )

        return static

    def targeting_filter(
        self, location: GeoPoint | None, timestamp: float
    ) -> Callable[[int], bool]:
        """Hard targeting predicate for one user and time."""

        def accepts(ad_id: int) -> bool:
            return self._corpus.get(ad_id).targeting.matches(location, timestamp)

        return accepts

    def evaluate(
        self,
        ad_id: int,
        content: float,
        profile_vec: SparseVector,
        location: GeoPoint | None,
        timestamp: float,
    ) -> ScoredAd | None:
        """Full evaluation of one candidate given its content affinity.

        Returns None when the ad is retired, fails its targeting predicate,
        or falls below the relevance floor (zero content *and* zero profile
        affinity).
        """
        if not self._corpus.is_active(ad_id):
            return None
        ad = self._corpus.get(ad_id)
        profile_affinity = dot(profile_vec, ad.terms) if profile_vec else 0.0
        if content <= 0.0 and profile_affinity <= 0.0:
            return None
        if not ad.targeting.matches(location, timestamp):
            return None
        static = (
            self.weights.beta * profile_affinity
            + self.weights.gamma * ad.targeting.proximity(location)
            + self.weights.delta * self.bid_score(ad_id, timestamp)
        )
        return self.scored_ad(ad_id, content, static)

    # -- block (vectorized) evaluation ---------------------------------------

    def _bid_block(
        self,
        cache: StaticRowCache,
        rows: np.ndarray,
        ad_ids: np.ndarray,
        timestamp: float,
    ) -> np.ndarray:
        """Vectorized :meth:`bid_score` over a row block (same op order)."""
        max_bid = self._corpus.max_bid
        if max_bid <= 0.0:
            return np.zeros(rows.shape[0], dtype=np.float64)
        bid = cache.bids(rows) / max_bid
        if self._budget_manager is not None:
            bid = bid * self._budget_manager.pacing_block(ad_ids, timestamp)
        if self._ctr_estimator is not None:
            quality = self._ctr_estimator.quality_multiplier
            bid = bid * np.fromiter(
                (quality(int(ad_id)) / QUALITY_CAP for ad_id in ad_ids),
                dtype=np.float64,
                count=rows.shape[0],
            )
        return bid

    def _bid_block_full(
        self, cache: StaticRowCache, ad_ids: np.ndarray, timestamp: float
    ) -> np.ndarray:
        """:meth:`_bid_block` over every synced row (``ad_ids`` is the
        compact mirror's full id array)."""
        size = ad_ids.shape[0]
        max_bid = self._corpus.max_bid
        if max_bid <= 0.0:
            return np.zeros(size, dtype=np.float64)
        bid = cache.bids_full() / max_bid
        if self._budget_manager is not None:
            bid = bid * self._budget_manager.pacing_block(ad_ids, timestamp)
        if self._ctr_estimator is not None:
            quality = self._ctr_estimator.quality_multiplier
            bid = bid * np.fromiter(
                (quality(int(ad_id)) / QUALITY_CAP for ad_id in ad_ids),
                dtype=np.float64,
                count=size,
            )
        return bid

    def evaluate_block(
        self,
        cache: StaticRowCache,
        rows: np.ndarray,
        ad_ids: np.ndarray,
        content: np.ndarray,
        affinity: np.ndarray,
        location: GeoPoint | None,
        timestamp: float,
    ) -> ScoredBlock:
        """Vectorized :meth:`evaluate` over a block of *alive* rows.

        ``content``/``affinity`` are the message and profile dot products
        per row (the caller computes both through the compact forward
        CSR). Applies the relevance floor and the targeting predicate,
        then scores the survivors with the same arithmetic — and the same
        operation order — as the scalar path, so scores agree to float32
        storage precision.
        """
        cache.sync()
        keep = (content > 0.0) | (affinity > 0.0)
        targeted_ok, proximity = cache.targeting_block(rows, location, timestamp)
        keep &= targeted_ok
        if not keep.any():
            empty = np.zeros(0, dtype=np.float64)
            return ScoredBlock(
                ad_ids=np.zeros(0, dtype=np.int64),
                content=empty,
                static=empty,
                score=empty,
            )
        rows = rows[keep]
        ad_ids = ad_ids[keep]
        content = content[keep]
        affinity = affinity[keep]
        proximity = proximity[keep]
        weights = self.weights
        static = (
            weights.beta * affinity
            + weights.gamma * proximity
            + weights.delta * self._bid_block(cache, rows, ad_ids, timestamp)
        )
        return ScoredBlock(
            ad_ids=ad_ids,
            content=content,
            static=static,
            score=weights.alpha * content + static,
        )

    def fanout_bid_block(
        self, cache: StaticRowCache, ad_ids: np.ndarray, timestamp: float
    ) -> np.ndarray:
        """Delta-weighted full-row bid term, shared across a fan-out.

        The bid is the only user-independent static, so one row vector
        serves every follower of an event.
        """
        cache.sync()
        return self.weights.delta * self._bid_block_full(
            cache, ad_ids, timestamp
        )

    def fanout_scores(
        self,
        cache: StaticRowCache,
        location: GeoPoint | None,
        content: np.ndarray,
        affinity: np.ndarray,
        bid: np.ndarray,
        kept: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Static + total score for one follower's kept rows.

        ``content``/``affinity``/``bid`` span the full row space (``bid``
        from :meth:`fanout_bid_block`); only ``kept`` rows are evaluated,
        with the same arithmetic and operation order as
        :meth:`evaluate_block`, so values are elementwise identical to
        the per-delivery path. Returns ``(static, score)`` on the subset.
        """
        weights = self.weights
        proximity = cache.targeting_full(location)[1]
        static = (
            weights.beta * affinity[kept]
            + weights.gamma * proximity[kept]
            + bid[kept]
        )
        return static, weights.alpha * content[kept] + static

    def probe_static_block(
        self,
        cache: StaticRowCache,
        location: GeoPoint | None,
        timestamp: float,
    ) -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
        """Vectorized :meth:`probe_static_fn` + :meth:`targeting_filter`
        for one user and time: returns ``block(rows, ad_ids) -> (keep
        mask, gamma·geo + delta·bid)`` for the vector searcher's
        static-boosted probe. ``rows`` must be sorted ascending."""
        weights = self.weights

        def block(
            rows: np.ndarray, ad_ids: np.ndarray
        ) -> tuple[np.ndarray, np.ndarray]:
            cache.sync()
            keep, proximity = cache.targeting_block(rows, location, timestamp)
            static = weights.gamma * proximity + weights.delta * self._bid_block(
                cache, rows, ad_ids, timestamp
            )
            return keep, static

        return block

    # -- query construction --------------------------------------------------

    def combined_query(
        self, message_vec: SparseVector, profile_vec: SparseVector
    ) -> MutableSparseVector:
        """``alpha·message + beta·profile`` as one sparse query vector."""
        query: MutableSparseVector = {
            term: self.weights.alpha * weight for term, weight in message_vec.items()
        }
        beta = self.weights.beta
        if beta > 0.0:
            for term, weight in profile_vec.items():
                query[term] = query.get(term, 0.0) + beta * weight
        return query

    # -- totals ---------------------------------------------------------------

    def total(self, content: float, static: float) -> float:
        """Combine a content cosine/dot with a static part."""
        return self.weights.alpha * content + static

    def scored_ad(self, ad_id: int, content: float, static: float) -> ScoredAd:
        return ScoredAd(
            ad_id=ad_id,
            score=self.total(content, static),
            content=content,
            static=static,
        )
