"""The ranking function and its pruning-safe upper bounds.

One :class:`ScoringModel` instance is shared by every pipeline variant and
every baseline so comparisons are apples-to-apples. The model exposes three
views of the same additive score:

* component scores (content / profile / geo / bid) for a known candidate;
* a *static score function* over ad ids — the query-independent part an
  index probe adds on top of the content dot product;
* a *combined query vector* ``alpha·message + beta·profile`` that folds the
  profile term into the dot product, which is what makes an exact one-probe
  evaluation possible.

Matching semantics (the "relevance floor"): an ad is a candidate for a
delivery only if it shares at least one term with the combined query, i.e.
has non-zero content or profile affinity. Ads with zero affinity are never
served, no matter their bid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.ads.budget import BudgetManager
from repro.ads.corpus import AdCorpus
from repro.ads.ctr import QUALITY_CAP, CtrEstimator
from repro.core.config import ScoringWeights
from repro.geo.point import GeoPoint
from repro.util.sparse import MutableSparseVector, SparseVector, dot


@dataclass(frozen=True, slots=True)
class ScoredAd:
    """One slate entry: ad id, total score, and its two halves."""

    ad_id: int
    score: float
    content: float
    static: float


class ScoringModel:
    """Evaluates ``alpha·content + beta·profile + gamma·geo + delta·bid``."""

    def __init__(
        self,
        corpus: AdCorpus,
        weights: ScoringWeights,
        *,
        budget_manager: BudgetManager | None = None,
        ctr_estimator: CtrEstimator | None = None,
    ) -> None:
        self._corpus = corpus
        self.weights = weights
        self._budget_manager = budget_manager
        self._ctr_estimator = ctr_estimator

    @property
    def ctr_estimator(self) -> CtrEstimator | None:
        return self._ctr_estimator

    @property
    def corpus(self) -> AdCorpus:
        return self._corpus

    @property
    def max_static(self) -> float:
        return self.weights.max_static

    @property
    def max_probe_static(self) -> float:
        return self.weights.max_probe_static

    # -- component scores ----------------------------------------------------

    def bid_score(self, ad_id: int, timestamp: float) -> float:
        """Pacing- and quality-adjusted normalised bid in [0, 1].

        With a CTR estimator attached the quality multiplier (in
        [0, QUALITY_CAP]) is folded in and renormalised by the cap, so the
        term never exceeds ``normalized_bid`` — every pruning bound built
        from raw bids stays admissible.
        """
        normalized = self._corpus.normalized_bid(ad_id)
        if self._budget_manager is not None:
            normalized *= self._budget_manager.pacing_multiplier(ad_id, timestamp)
        if self._ctr_estimator is not None:
            normalized *= (
                self._ctr_estimator.quality_multiplier(ad_id) / QUALITY_CAP
            )
        return normalized

    def static_score(
        self,
        ad_id: int,
        profile_vec: SparseVector,
        location: GeoPoint | None,
        timestamp: float,
    ) -> float | None:
        """The user-dependent, message-independent part of the score.

        Returns None when the ad's targeting predicate rejects this user
        and time — the ad must not be served at all.
        """
        ad = self._corpus.get(ad_id)
        if not ad.targeting.matches(location, timestamp):
            return None
        profile_affinity = dot(profile_vec, ad.terms) if profile_vec else 0.0
        return (
            self.weights.beta * profile_affinity
            + self.weights.gamma * ad.targeting.proximity(location)
            + self.weights.delta * self.bid_score(ad_id, timestamp)
        )

    def probe_static_fn(
        self, location: GeoPoint | None, timestamp: float
    ) -> Callable[[int], float]:
        """Static function for exact index probes (profile folded into the
        query): ``gamma·geo + delta·bid`` for one user and time."""

        def static(ad_id: int) -> float:
            ad = self._corpus.get(ad_id)
            return (
                self.weights.gamma * ad.targeting.proximity(location)
                + self.weights.delta * self.bid_score(ad_id, timestamp)
            )

        return static

    def targeting_filter(
        self, location: GeoPoint | None, timestamp: float
    ) -> Callable[[int], bool]:
        """Hard targeting predicate for one user and time."""

        def accepts(ad_id: int) -> bool:
            return self._corpus.get(ad_id).targeting.matches(location, timestamp)

        return accepts

    def evaluate(
        self,
        ad_id: int,
        content: float,
        profile_vec: SparseVector,
        location: GeoPoint | None,
        timestamp: float,
    ) -> ScoredAd | None:
        """Full evaluation of one candidate given its content affinity.

        Returns None when the ad is retired, fails its targeting predicate,
        or falls below the relevance floor (zero content *and* zero profile
        affinity).
        """
        if not self._corpus.is_active(ad_id):
            return None
        ad = self._corpus.get(ad_id)
        profile_affinity = dot(profile_vec, ad.terms) if profile_vec else 0.0
        if content <= 0.0 and profile_affinity <= 0.0:
            return None
        if not ad.targeting.matches(location, timestamp):
            return None
        static = (
            self.weights.beta * profile_affinity
            + self.weights.gamma * ad.targeting.proximity(location)
            + self.weights.delta * self.bid_score(ad_id, timestamp)
        )
        return self.scored_ad(ad_id, content, static)

    # -- query construction --------------------------------------------------

    def combined_query(
        self, message_vec: SparseVector, profile_vec: SparseVector
    ) -> MutableSparseVector:
        """``alpha·message + beta·profile`` as one sparse query vector."""
        query: MutableSparseVector = {
            term: self.weights.alpha * weight for term, weight in message_vec.items()
        }
        beta = self.weights.beta
        if beta > 0.0:
            for term, weight in profile_vec.items():
                query[term] = query.get(term, 0.0) + beta * weight
        return query

    # -- totals ---------------------------------------------------------------

    def total(self, content: float, static: float) -> float:
        """Combine a content cosine/dot with a static part."""
        return self.weights.alpha * content + static

    def scored_ad(self, ad_id: int, content: float, static: float) -> ScoredAd:
        return ScoredAd(
            ad_id=ad_id,
            score=self.total(content, static),
            content=content,
            static=static,
        )
