"""Public facade: build a ready-to-run recommender from a workload.

``ContextAwareRecommender`` owns an :class:`~repro.core.engine.AdEngine`
plus the fitted text pipeline, and adds conveniences the examples and the
evaluation harness use: construction from a synthetic workload, replaying a
whole post stream, and introspection helpers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import EngineConfig
from repro.core.engine import AdEngine, EngineStats, PostResult
from repro.core.scoring import ScoredAd
from repro.geo.point import GeoPoint
from repro.stream.metrics import StreamMetrics
from repro.stream.simulator import FeedSimulator

if TYPE_CHECKING:  # avoid an import cycle: datagen imports core types
    from repro.datagen.workload import Workload
    from repro.obs.registry import MetricsRegistry, NullMetrics
    from repro.obs.trace import RequestTracer
    from repro.obs.tracer import StageTracer
    from repro.qos.controller import QosController


class ContextAwareRecommender:
    """High-level entry point for the whole system."""

    def __init__(self, engine: AdEngine) -> None:
        self.engine = engine

    @classmethod
    def from_workload(
        cls,
        workload: "Workload",
        config: EngineConfig | None = None,
        *,
        tracer: "StageTracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
        qos: "QosController | None" = None,
        request_tracer: "RequestTracer | None" = None,
    ) -> "ContextAwareRecommender":
        """Wire an engine over a generated workload's corpus, graph, users
        and fitted vectorizer. ``tracer`` opts the engine into per-stage
        observability; ``metrics`` into live windowed telemetry (see
        :mod:`repro.obs`); ``qos`` attaches the QoS control plane (see
        :mod:`repro.qos`); ``request_tracer`` into distributed request
        tracing (see :mod:`repro.obs.trace`)."""
        engine = AdEngine(
            corpus=workload.corpus,
            graph=workload.graph,
            vectorizer=workload.vectorizer,
            config=config,
            tokenizer=workload.tokenizer,
            tracer=tracer,
            metrics=metrics,
            qos=qos,
            request_tracer=request_tracer,
        )
        for user in workload.users:
            engine.register_user(user.user_id, user.home)
        return cls(engine)

    # -- delegation --------------------------------------------------------

    @property
    def config(self) -> EngineConfig:
        return self.engine.config

    @property
    def stats(self) -> EngineStats:
        return self.engine.stats

    @property
    def tracer(self) -> "StageTracer":
        return self.engine.tracer

    @property
    def metrics(self) -> "MetricsRegistry | NullMetrics":
        return self.engine.metrics

    def post(
        self, author_id: int, text: str, timestamp: float, *, msg_id: int | None = None
    ) -> PostResult:
        """Publish one message through the engine."""
        return self.engine.post(author_id, text, timestamp, msg_id=msg_id)

    def post_batch(self, posts) -> list[PostResult]:
        """Publish a timestamp-ordered batch of posts in one call."""
        return self.engine.post_batch(posts)

    def checkin(self, user_id: int, point: GeoPoint, timestamp: float) -> None:
        self.engine.checkin(user_id, point, timestamp)

    def slate_for_message(
        self, user_id: int, text: str, timestamp: float
    ) -> tuple[ScoredAd, ...]:
        return self.engine.slate_for_message(user_id, text, timestamp)

    def standing_slate(self, user_id: int) -> tuple[ScoredAd, ...]:
        return self.engine.standing_slate(user_id)

    # -- batch driving -------------------------------------------------------

    def run_stream(
        self,
        workload: "Workload",
        *,
        limit: int | None = None,
        batch_size: int | None = None,
    ) -> StreamMetrics:
        """Replay the workload's post stream (optionally truncated) through
        the engine and return stream-level metrics."""
        posts = workload.posts if limit is None else workload.posts[:limit]
        simulator = FeedSimulator(self.engine)
        return simulator.run(
            posts, checkins=workload.checkins, batch_size=batch_size
        )

    def explain(self, scored: ScoredAd) -> str:
        """Human-readable one-liner for a slate entry."""
        ad = self.engine.corpus.get(scored.ad_id)
        keywords = ", ".join(ad.keywords[:4])
        return (
            f"ad {scored.ad_id} ({ad.advertiser!r}: {keywords}) "
            f"score={scored.score:.3f} "
            f"[content={scored.content:.3f}, static={scored.static:.3f}]"
        )
