"""Global bid/geo candidate list: the third candidate source.

The ``gamma·geo + delta·bid`` part of the score is bounded per ad by
``gamma + delta·normalized_bid`` regardless of user and time (proximity and
pacing are both <= 1). Keeping the ads sorted by that bound gives both a
candidate list (the top ``size`` prefix) and a *cutoff*: any ad outside the
prefix contributes at most ``gamma + delta·bid_norm(prefix end)`` of
geo+bid score — one of the three cutoff terms in the slate certificate
(see :mod:`repro.core.rerank`).

Maintenance: retirements remove entries (the bound of everyone else is
unchanged, so the cutoff only tightens); additions re-sort lazily.
"""

from __future__ import annotations

import bisect

from repro.ads.corpus import AdCorpus
from repro.core.config import ScoringWeights
from repro.errors import ConfigError


class GlobalStaticTopList:
    """Active ads ordered by their user-independent geo+bid upper bound."""

    def __init__(self, corpus: AdCorpus, weights: ScoringWeights, size: int) -> None:
        if size < 1:
            raise ConfigError(f"size must be >= 1, got {size}")
        self._corpus = corpus
        self._weights = weights
        self.size = size
        # Monotone change counter: bumps whenever membership or order can
        # have changed, so derived caches (the compact row view in
        # rerank) can key on it.
        self.version = 0
        # Descending by normalized bid; key list kept in ascending-negated
        # order for bisect. Entries: (-bid_norm, ad_id).
        self._entries: list[tuple[float, int]] = []
        self._rebuild()
        corpus.subscribe(on_add=self._on_add, on_retire=self._on_retire)

    def _rebuild(self) -> None:
        self.version += 1
        self._entries = sorted(
            (-self._corpus.normalized_bid(ad.ad_id), ad.ad_id)
            for ad in self._corpus.active_ads()
        )

    def _on_add(self, ad) -> None:
        # max_bid may have risen, shifting everyone's normalized bid by a
        # common factor — order is preserved, so stored keys stay correctly
        # *ordered*; rebuild keeps them exact since cutoffs are read off them.
        self._rebuild()

    def _on_retire(self, ad) -> None:
        self.version += 1
        key = (-self._corpus.normalized_bid(ad.ad_id), ad.ad_id)
        index = bisect.bisect_left(self._entries, key)
        if index < len(self._entries) and self._entries[index] == key:
            del self._entries[index]
        else:  # normalized bid changed since insert (max_bid rose): scan
            self._entries = [
                entry for entry in self._entries if entry[1] != ad.ad_id
            ]

    def __len__(self) -> int:
        return len(self._entries)

    def candidate_ids(self) -> list[int]:
        """The top-``size`` prefix of ads by geo+bid upper bound."""
        return [ad_id for _, ad_id in self._entries[: self.size]]

    def cutoff(self) -> float:
        """Upper bound on ``gamma·geo + delta·bid`` of any ad outside the
        prefix; 0.0 when the prefix covers every active ad."""
        if len(self._entries) <= self.size:
            return 0.0
        negated_bid, _ = self._entries[self.size]
        return self._weights.gamma + self._weights.delta * (-negated_bid)
