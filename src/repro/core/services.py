"""Shared engine services: the single context object behind the pipeline.

Every delivery stage — vectorization, the shared probe, the three
personalisation strategies, GSP charging, CTR feedback — used to reach for
a loose bag of attributes threaded ad-hoc through ``AdEngine``
(``corpus``/``index``/``budget``/``scoring``/``profiles``/``ctr``/clock).
:class:`EngineServices` names that bag once so stages, the checkpoint
layer and the facade all share one wiring point.

Only ``config``/``corpus``/``index``/``scoring`` are mandatory: the
ranking layer (:class:`~repro.core.rerank.Personalizer`,
:class:`~repro.core.incremental.IncrementalTopK`) runs off those four,
which is how the baseline adapter and the unit tests build partial stacks
without a graph, budgets or a clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.config import EngineConfig
from repro.errors import UnknownUserError
from repro.geo.point import GeoPoint
from repro.obs.registry import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.trace import NOOP_REQUEST_TRACER, NoopRequestTracer, RequestTracer
from repro.obs.tracer import NoopTracer, StageTracer
from repro.profiles.context import FeedContext
from repro.util.sparse import MutableSparseVector

if TYPE_CHECKING:  # heavyweight imports only needed for annotations
    from repro.ads.budget import BudgetManager
    from repro.ads.corpus import AdCorpus
    from repro.ads.ctr import CtrEstimator
    from repro.core.incremental import IncrementalTopK
    from repro.core.scoring import ScoringModel
    from repro.graph.social import SocialGraph
    from repro.index.inverted import AdInvertedIndex
    from repro.learn.linucb import LinUcbLearner
    from repro.profiles.profile import ProfileStore, UserProfile
    from repro.qos.controller import QosController
    from repro.stream.clock import SimClock


@dataclass
class EngineStats:
    """Cumulative engine counters (the F6/F7 instrumentation)."""

    posts: int = 0
    deliveries: int = 0
    impressions: int = 0
    revenue: float = 0.0
    shared_probes: int = 0
    # Sum of effective probe depths (K′ after any QoS shrink) across all
    # shared probes — divide by shared_probes for the mean depth the T3
    # probe-vs-personalize attribution reports.
    probe_depth_total: int = 0
    certified_deliveries: int = 0
    fallback_deliveries: int = 0
    approximate_deliveries: int = 0
    exact_deliveries: int = 0
    incremental_refreshes: int = 0
    retired_ads: int = 0
    # QoS control plane (zero unless a QosController is attached).
    deliveries_shed: int = 0
    deliveries_degraded: int = 0
    revenue_shed_upper_bound: float = 0.0

    @property
    def attempted_deliveries(self) -> int:
        """Fan-out size before admission control: admitted + shed."""
        return self.deliveries + self.deliveries_shed

    def mean_probe_depth(self) -> float:
        if self.shared_probes == 0:
            return 0.0
        return self.probe_depth_total / self.shared_probes

    def fallback_rate(self) -> float:
        if self.deliveries == 0:
            return 0.0
        return self.fallback_deliveries / self.deliveries

    def refresh_rate(self) -> float:
        if self.deliveries == 0:
            return 0.0
        return self.incremental_refreshes / self.deliveries


@dataclass
class UserState:
    """Everything the engine remembers about one user."""

    location: GeoPoint | None = None
    context: FeedContext | None = None
    incremental: "IncrementalTopK | None" = None
    profile_vec_epoch: int = -1
    profile_vec: MutableSparseVector = field(default_factory=dict)


class UserStateStore:
    """Per-user mutable state, keyed by user id and guarded by the graph."""

    def __init__(self, graph: "SocialGraph") -> None:
        self._graph = graph
        self._states: dict[int, UserState] = {}

    def register(self, user_id: int) -> UserState:
        """Create (or fetch) a state slot without a graph membership check."""
        return self._states.setdefault(user_id, UserState())

    def state(self, user_id: int) -> UserState:
        """The user's state; unknown users (absent from the graph) raise."""
        state = self._states.get(user_id)
        if state is None:
            if not self._graph.has_user(user_id):
                raise UnknownUserError(user_id)
            state = UserState()
            self._states[user_id] = state
        return state

    def items(self):
        return self._states.items()

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._states


@dataclass
class EngineServices:
    """The wired substrate every pipeline stage draws from."""

    config: EngineConfig
    corpus: "AdCorpus"
    index: "AdInvertedIndex"
    scoring: "ScoringModel"
    graph: "SocialGraph | None" = None
    budget: "BudgetManager | None" = None
    profiles: "ProfileStore | None" = None
    ctr: "CtrEstimator | None" = None
    clock: "SimClock | None" = None
    users: UserStateStore | None = None
    stats: EngineStats = field(default_factory=EngineStats)
    # Stage observability. NoopTracer by default: tracing must be opted
    # into, and the un-traced hot path pays one attribute check per span.
    tracer: StageTracer = field(default_factory=NoopTracer)
    # Live telemetry. The shared NULL_METRICS singleton by default — same
    # contract as the tracer: enabled-gated, one attribute check when off.
    metrics: "MetricsRegistry | NullMetrics" = NULL_METRICS
    # Distributed request tracing. The shared NOOP_REQUEST_TRACER by
    # default — enabled-gated like the stage tracer, so the un-traced
    # path pays one attribute check per event, not per span.
    request_tracer: "RequestTracer | NoopRequestTracer" = NOOP_REQUEST_TRACER
    # QoS control plane. None by default: with no controller attached the
    # delivery path is byte-identical to a pre-QoS engine (one None check
    # per batch); a QosController gates admission and degradation rungs.
    qos: "QosController | None" = None
    # Online-learning rerank. None unless config.personalize == "linucb";
    # when set, make_personalize_stage wraps the mode's stage with the
    # LinUCB rerank and record_click() routes rewards here.
    learner: "LinUcbLearner | None" = None

    # -- per-user helpers ---------------------------------------------------

    def context_of(self, state: UserState) -> FeedContext:
        """The user's feed context, created lazily with the config knobs."""
        if state.context is None:
            state.context = FeedContext(
                window_size=self.config.window_size,
                half_life_s=self.config.context_half_life_s,
                max_age_s=self.config.context_max_age_s,
            )
        return state.context

    def profile_of(
        self, user_id: int, state: UserState
    ) -> "tuple[UserProfile, MutableSparseVector]":
        """One lookup for (profile, normalised vector), epoch-cached.

        The batch fan-out calls this once per follower per message; the
        vector is rebuilt only when the profile's epoch moved.
        """
        profile = self.profiles.get_or_create(user_id)
        if state.profile_vec_epoch != profile.epoch:
            state.profile_vec = profile.vector()
            state.profile_vec_epoch = profile.epoch
        return profile, state.profile_vec
