"""Engine configuration: scoring weights and pipeline knobs."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class ScoringWeights:
    """Weights of the four ranking components.

    ``score(a | u, m, t) = alpha·content + beta·profile + gamma·geo + delta·bid``

    where content is the cosine between the ad and the message (shared mode)
    or the raw dot with the decayed feed context (incremental mode), profile
    is the cosine with the user's interest vector, geo is targeting
    proximity in [0, 1], and bid is the pacing-adjusted normalised bid.
    """

    alpha: float = 1.0
    beta: float = 0.5
    gamma: float = 0.25
    delta: float = 0.25

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma", "delta"):
            value = getattr(self, name)
            if value < 0.0:
                raise ConfigError(f"{name} must be >= 0, got {value}")
        if self.alpha <= 0.0:
            raise ConfigError(
                "alpha must be positive: a context-aware engine with no "
                "content term is one of the baselines, not the system"
            )

    @property
    def max_static(self) -> float:
        """Upper bound on the per-user static part (each component <= 1)."""
        return self.beta + self.gamma + self.delta

    @property
    def max_probe_static(self) -> float:
        """Upper bound on the static part inside an exact index probe, where
        the profile term is folded into the query vector instead."""
        return self.gamma + self.delta


class EngineMode(enum.Enum):
    """How the engine turns a post into per-user slates."""

    SHARED = "shared"  # per-message shared candidates + cheap personalisation
    INCREMENTAL = "incremental"  # standing per-user top-k over the feed window
    EXACT = "exact"  # one exact index probe per delivery (baseline)


@dataclass(frozen=True)
class EngineConfig:
    """All pipeline knobs with validated defaults (Table T2)."""

    k: int = 10
    weights: ScoringWeights = field(default_factory=ScoringWeights)
    mode: EngineMode = EngineMode.SHARED
    # Index strategy for every probe ("ta" | "wand" | "maxscore" |
    # "vector"). All four are exact; "vector" additionally routes the
    # per-delivery union scoring through the compact numpy kernels. "ta"
    # stays the default as the pure-Python reference oracle.
    searcher: str = "ta"
    # Shared mode: how many candidates the per-message probe over-fetches.
    # Depths are tuned by experiment F6: shallow lists certify almost
    # nothing (constant fallbacks), ~80 drives the fallback rate near zero.
    overfetch: int = 80
    # Depth of the cached per-user profile candidate probe (second source).
    profile_candidates: int = 50
    # Depth of the global bid/geo candidate prefix (third source).
    static_candidates: int = 50
    # Incremental mode: depth of the per-user content shadow set.
    shadow_size: int = 50
    # Feed-context window (incremental mode).
    window_size: int = 20
    context_half_life_s: float | None = 1800.0
    context_max_age_s: float | None = None
    # Interest profiles.
    profile_half_life_s: float | None = 6 * 3600.0
    # Exactness: fall back to an exact probe when certification fails.
    exact_fallback: bool = True
    # Monetisation.
    reserve_price: float = 0.01
    pacing_enabled: bool = True
    charge_impressions: bool = True
    campaign_duration_s: float = 86_400.0
    # Click feedback: when on, the engine keeps a CTR estimator, records an
    # impression per served slate entry, and the bid term becomes
    # quality-adjusted (see repro.ads.ctr). Clicks arrive via
    # AdEngine.record_click().
    ctr_feedback: bool = False
    ctr_prior: float = 0.05
    ctr_prior_strength: float = 20.0
    # Online-learning rerank ("static" | "linucb"). "linucb" wraps the
    # mode's personalize stage with per-ad LinUCB models updated from
    # record_click() and negative impressions (see repro.learn.linucb for
    # the sync-epoch consistency model).
    personalize: str = "static"
    # LinUCB exploration width (alpha = 0 disables the confidence bonus).
    alpha_ucb: float = 0.5
    # Ridge regularisation of each arm's design matrix (A init = λI).
    linucb_lambda: float = 1.0
    # Stream-time epoch length between model folds (and, in clusters, the
    # merged cross-shard syncs).
    linucb_sync_interval_s: float = 300.0
    # Freeze the models: serve UCB scores but record no updates. With
    # alpha_ucb = 0 this is the differential oracle's byte-identical
    # equivalent of the static stage.
    linucb_frozen: bool = False
    # Whether post() materialises per-delivery slates in its result
    # (perf harnesses switch this off to measure engine cost alone).
    collect_deliveries: bool = True

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if self.searcher not in ("ta", "wand", "maxscore", "vector"):
            raise ConfigError(
                f"searcher must be one of 'ta', 'wand', 'maxscore', "
                f"'vector'; got {self.searcher!r}"
            )
        if self.overfetch < self.k:
            raise ConfigError(
                f"overfetch ({self.overfetch}) must be >= k ({self.k})"
            )
        if self.profile_candidates < 1:
            raise ConfigError(
                f"profile_candidates must be >= 1, got {self.profile_candidates}"
            )
        if self.static_candidates < 1:
            raise ConfigError(
                f"static_candidates must be >= 1, got {self.static_candidates}"
            )
        if self.shadow_size < self.k:
            raise ConfigError(
                f"shadow_size ({self.shadow_size}) must be >= k ({self.k})"
            )
        if self.window_size < 1:
            raise ConfigError(f"window_size must be >= 1, got {self.window_size}")
        if self.reserve_price < 0.0:
            raise ConfigError(
                f"reserve_price must be >= 0, got {self.reserve_price}"
            )
        if self.campaign_duration_s <= 0.0:
            raise ConfigError(
                f"campaign_duration_s must be positive, got {self.campaign_duration_s}"
            )
        if not 0.0 < self.ctr_prior < 1.0:
            raise ConfigError(f"ctr_prior must be in (0, 1), got {self.ctr_prior}")
        if self.ctr_prior_strength <= 0.0:
            raise ConfigError(
                f"ctr_prior_strength must be positive, got {self.ctr_prior_strength}"
            )
        if self.personalize not in ("static", "linucb"):
            raise ConfigError(
                f"personalize must be one of 'static', 'linucb'; "
                f"got {self.personalize!r}"
            )
        if self.alpha_ucb < 0.0:
            raise ConfigError(
                f"alpha_ucb must be >= 0, got {self.alpha_ucb}"
            )
        if self.linucb_lambda <= 0.0:
            raise ConfigError(
                f"linucb_lambda must be positive, got {self.linucb_lambda}"
            )
        if self.linucb_sync_interval_s <= 0.0:
            raise ConfigError(
                f"linucb_sync_interval_s must be positive, "
                f"got {self.linucb_sync_interval_s}"
            )

    def describe(self) -> dict[str, object]:
        """Flat parameter table for reports (Table T2)."""
        return {
            "k": self.k,
            "mode": self.mode.value,
            "searcher": self.searcher,
            "alpha": self.weights.alpha,
            "beta": self.weights.beta,
            "gamma": self.weights.gamma,
            "delta": self.weights.delta,
            "overfetch": self.overfetch,
            "profile_candidates": self.profile_candidates,
            "static_candidates": self.static_candidates,
            "shadow_size": self.shadow_size,
            "window_size": self.window_size,
            "context_half_life_s": self.context_half_life_s,
            "profile_half_life_s": self.profile_half_life_s,
            "exact_fallback": self.exact_fallback,
            "reserve_price": self.reserve_price,
            "pacing_enabled": self.pacing_enabled,
            "personalize": self.personalize,
            "alpha_ucb": self.alpha_ucb,
        }
