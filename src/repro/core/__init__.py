"""The paper's contribution layer: context-aware ad matching at feed speed.

* :mod:`repro.core.scoring` — the ranking function and its upper bounds;
* :mod:`repro.core.candidates` — per-message shared candidate generation;
* :mod:`repro.core.rerank` — per-delivery personalisation with a
  certify-or-fallback exactness guarantee;
* :mod:`repro.core.incremental` — standing per-user top-k maintained
  incrementally as the feed window slides;
* :mod:`repro.core.engine` — the full pipeline;
* :mod:`repro.core.recommender` — the public facade.
"""

from repro.core.candidates import CandidateSet, SharedCandidateGenerator
from repro.core.config import EngineConfig, EngineMode, ScoringWeights
from repro.core.engine import AdEngine, DeliveryResult, EngineStats, PostResult
from repro.core.incremental import IncrementalTopK
from repro.core.recommender import ContextAwareRecommender
from repro.core.rerank import Personalizer
from repro.core.scoring import ScoredAd, ScoringModel

__all__ = [
    "AdEngine",
    "CandidateSet",
    "ContextAwareRecommender",
    "DeliveryResult",
    "EngineConfig",
    "EngineMode",
    "EngineStats",
    "IncrementalTopK",
    "Personalizer",
    "PostResult",
    "ScoredAd",
    "ScoringModel",
    "SharedCandidateGenerator",
    "ScoringWeights",
]
