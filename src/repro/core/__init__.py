"""The paper's contribution layer: context-aware ad matching at feed speed.

* :mod:`repro.core.scoring` — the ranking function and its upper bounds;
* :mod:`repro.core.candidates` — per-message shared candidate generation;
* :mod:`repro.core.rerank` — per-delivery personalisation with a
  certify-or-fallback exactness guarantee;
* :mod:`repro.core.incremental` — standing per-user top-k maintained
  incrementally as the feed window slides;
* :mod:`repro.core.services` — the shared :class:`EngineServices` context
  every stage draws from;
* :mod:`repro.core.pipeline` — the staged delivery pipeline (vectorize →
  candidates → personalize → charge → feedback) with batch fan-out;
* :mod:`repro.core.engine` — the stream-facing engine facade;
* :mod:`repro.core.recommender` — the public facade.
"""

from repro.core.candidates import CandidateSet, SharedCandidateGenerator
from repro.core.config import EngineConfig, EngineMode, ScoringWeights
from repro.core.engine import AdEngine, DeliveryResult, PostResult
from repro.core.incremental import IncrementalTopK
from repro.core.pipeline import (
    CandidateStage,
    ChargeStage,
    DeliveryOutcome,
    DeliveryPipeline,
    FeedbackStage,
    PersonalizeStage,
    PostEvent,
    VectorizeStage,
)
from repro.core.recommender import ContextAwareRecommender
from repro.core.rerank import Personalizer
from repro.core.scoring import ScoredAd, ScoringModel
from repro.core.services import EngineServices, EngineStats

__all__ = [
    "AdEngine",
    "CandidateSet",
    "CandidateStage",
    "ChargeStage",
    "ContextAwareRecommender",
    "DeliveryOutcome",
    "DeliveryPipeline",
    "DeliveryResult",
    "EngineConfig",
    "EngineMode",
    "EngineServices",
    "EngineStats",
    "FeedbackStage",
    "IncrementalTopK",
    "Personalizer",
    "PersonalizeStage",
    "PostEvent",
    "PostResult",
    "ScoredAd",
    "ScoringModel",
    "SharedCandidateGenerator",
    "ScoringWeights",
    "VectorizeStage",
]
