"""The context-aware advertising engine: post → fan-out → slates → charging.

``AdEngine`` wires every substrate together and exposes the stream-facing
operations: :meth:`post` (a user publishes a message; every follower's feed
receives it and gets an ad slate), :meth:`checkin` (location update) and
:meth:`slate_for_message` (one-off exact query, used by examples and the
effectiveness harness).

Three modes (:class:`~repro.core.config.EngineMode`):

* ``SHARED`` — one content probe per message, O(overfetch) personalisation
  per delivery, certify-or-fallback exactness (the headline method);
* ``INCREMENTAL`` — standing per-user top-k over the sliding feed window,
  updated by the certify-or-refresh maintainer;
* ``EXACT`` — one exact combined-query probe per delivery (the strong
  baseline the paper-style evaluation compares against).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ads.auction import run_gsp_auction
from repro.ads.budget import BudgetManager
from repro.ads.corpus import AdCorpus
from repro.ads.ctr import CtrEstimator
from repro.core.candidates import SharedCandidateGenerator
from repro.core.config import EngineConfig, EngineMode
from repro.core.incremental import IncrementalTopK
from repro.core.rerank import Personalizer
from repro.core.scoring import ScoredAd, ScoringModel
from repro.errors import ConfigError, UnknownUserError
from repro.geo.point import GeoPoint
from repro.graph.social import SocialGraph
from repro.index.inverted import AdInvertedIndex
from repro.profiles.context import FeedContext
from repro.profiles.profile import ProfileStore
from repro.stream.clock import SimClock
from repro.text.tokenizer import Tokenizer
from repro.text.vectorizer import TfidfVectorizer
from repro.util.sparse import MutableSparseVector


@dataclass(frozen=True, slots=True)
class DeliveryResult:
    """One follower's slate for one delivered message."""

    user_id: int
    slate: tuple[ScoredAd, ...]
    certified: bool
    fell_back: bool


@dataclass(frozen=True, slots=True)
class PostResult:
    """Everything that happened when one message was posted."""

    msg_id: int
    author_id: int
    timestamp: float
    num_deliveries: int
    num_impressions: int
    revenue: float
    deliveries: tuple[DeliveryResult, ...]


@dataclass
class EngineStats:
    """Cumulative engine counters (the F6/F7 instrumentation)."""

    posts: int = 0
    deliveries: int = 0
    impressions: int = 0
    revenue: float = 0.0
    shared_probes: int = 0
    certified_deliveries: int = 0
    fallback_deliveries: int = 0
    approximate_deliveries: int = 0
    incremental_refreshes: int = 0
    retired_ads: int = 0

    def fallback_rate(self) -> float:
        if self.deliveries == 0:
            return 0.0
        return self.fallback_deliveries / self.deliveries

    def refresh_rate(self) -> float:
        if self.deliveries == 0:
            return 0.0
        return self.incremental_refreshes / self.deliveries


@dataclass
class _UserState:
    location: GeoPoint | None = None
    context: FeedContext | None = None
    incremental: IncrementalTopK | None = None
    profile_vec_epoch: int = -1
    profile_vec: MutableSparseVector = field(default_factory=dict)


class AdEngine:
    """The full context-aware ad recommendation pipeline."""

    def __init__(
        self,
        corpus: AdCorpus,
        graph: SocialGraph,
        vectorizer: TfidfVectorizer,
        *,
        config: EngineConfig | None = None,
        tokenizer: Tokenizer | None = None,
        text_vectorizer=None,
    ) -> None:
        """``text_vectorizer`` (optional ``str -> sparse vector``) replaces
        the default tokenize→TF-IDF pipeline — how the concept-enriched
        :class:`~repro.text.hybrid.HybridVectorizer` plugs in."""
        self.config = config or EngineConfig()
        self.corpus = corpus
        self.graph = graph
        self.vectorizer = vectorizer
        self.tokenizer = tokenizer or Tokenizer()
        self._text_vectorizer = text_vectorizer
        self.budget = BudgetManager(
            corpus,
            campaign_start=0.0,
            campaign_end=self.config.campaign_duration_s,
            pacing_enabled=self.config.pacing_enabled,
        )
        self.index = AdInvertedIndex.from_corpus(corpus, subscribe=True)
        self.ctr = (
            CtrEstimator(
                prior_ctr=self.config.ctr_prior,
                prior_strength=self.config.ctr_prior_strength,
            )
            if self.config.ctr_feedback
            else None
        )
        self.scoring = ScoringModel(
            corpus,
            self.config.weights,
            budget_manager=self.budget,
            ctr_estimator=self.ctr,
        )
        self.profiles = ProfileStore(self.config.profile_half_life_s)
        probe_depth = (
            self.config.overfetch
            if self.config.mode is EngineMode.SHARED
            else self.config.shadow_size
        )
        self.candidate_gen = SharedCandidateGenerator(
            self.index, probe_depth, searcher=self.config.searcher
        )
        self.personalizer = Personalizer(
            self.scoring, self.index, config=self.config
        )
        self.stats = EngineStats()
        self._users: dict[int, _UserState] = {}
        self._clock = SimClock()
        self._next_msg_id = 0
        # Ads launched after construction (checkpoints must replay them,
        # since a restore target is built from the base catalog only).
        self._launched_ads: list = []
        corpus.subscribe(on_retire=self._count_retirement)

    def _count_retirement(self, _ad) -> None:
        self.stats.retired_ads += 1

    # -- user management ---------------------------------------------------

    def register_user(self, user_id: int, location: GeoPoint | None = None) -> None:
        """Make a user known to the engine (and the graph, if absent)."""
        if not self.graph.has_user(user_id):
            self.graph.add_user(user_id)
        state = self._users.setdefault(user_id, _UserState())
        if location is not None:
            state.location = location

    def _state(self, user_id: int) -> _UserState:
        state = self._users.get(user_id)
        if state is None:
            if not self.graph.has_user(user_id):
                raise UnknownUserError(user_id)
            state = _UserState()
            self._users[user_id] = state
        return state

    def checkin(self, user_id: int, point: GeoPoint, timestamp: float) -> None:
        """Record a location update."""
        self._clock.advance_to(max(self._clock.now, timestamp))
        self._state(user_id).location = point

    def location_of(self, user_id: int) -> GeoPoint | None:
        return self._state(user_id).location

    def _context_of(self, state: _UserState) -> FeedContext:
        if state.context is None:
            state.context = FeedContext(
                window_size=self.config.window_size,
                half_life_s=self.config.context_half_life_s,
                max_age_s=self.config.context_max_age_s,
            )
        return state.context

    def _incremental_of(self, user_id: int, state: _UserState) -> IncrementalTopK:
        if state.incremental is None:
            state.incremental = IncrementalTopK(
                user_id=user_id,
                context=self._context_of(state),
                scoring=self.scoring,
                index=self.index,
                personalizer=self.personalizer,
                k=self.config.k,
                shadow_size=self.config.shadow_size,
                exact_fallback=self.config.exact_fallback,
                searcher=self.config.searcher,
            )
        return state.incremental

    def _profile_vector(self, user_id: int, state: _UserState) -> MutableSparseVector:
        """The user's normalised profile vector, cached by profile epoch."""
        profile = self.profiles.get_or_create(user_id)
        if state.profile_vec_epoch != profile.epoch:
            state.profile_vec = profile.vector()
            state.profile_vec_epoch = profile.epoch
        return state.profile_vec

    # -- text -----------------------------------------------------------------

    def vectorize(self, text: str) -> MutableSparseVector:
        """Text → unit sparse vector (custom pipeline when configured)."""
        if self._text_vectorizer is not None:
            return self._text_vectorizer(text)
        return self.vectorizer.transform(self.tokenizer.tokenize(text))

    # -- the stream-facing operations -------------------------------------------

    def post(
        self,
        author_id: int,
        text: str,
        timestamp: float,
        *,
        msg_id: int | None = None,
    ) -> PostResult:
        """Publish a message: update the author's profile, fan out to every
        follower, produce (and charge) an ad slate per delivery."""
        self._clock.advance_to(max(self._clock.now, timestamp))
        if msg_id is None:
            msg_id = self._next_msg_id
        self._next_msg_id = max(self._next_msg_id, msg_id + 1)
        author_state = self._state(author_id)
        message_vec = self.vectorize(text)
        self.profiles.get_or_create(author_id).update(message_vec, timestamp)
        author_state.profile_vec_epoch = -1  # invalidate cache

        followers = sorted(self.graph.followers(author_id))
        self.stats.posts += 1

        mode = self.config.mode
        if mode is EngineMode.EXACT:
            candidates = None  # the per-delivery baseline never shares
        else:
            candidates = self.candidate_gen.generate(message_vec)
            self.stats.shared_probes += 1

        deliveries: list[DeliveryResult] = []
        num_impressions = 0
        revenue = 0.0
        for follower in followers:
            state = self._state(follower)
            profile_vec = self._profile_vector(follower, state)
            if mode is EngineMode.SHARED:
                profile = self.profiles.get_or_create(follower)
                result = self.personalizer.slate_for(
                    candidates,
                    message_vec,
                    follower,
                    profile_vec,
                    profile.epoch,
                    state.location,
                    timestamp,
                    self.config.k,
                )
                slate, certified, fell_back = (
                    result.slate,
                    result.certified,
                    result.fell_back,
                )
            elif mode is EngineMode.INCREMENTAL:
                maintainer = self._incremental_of(follower, state)
                profile = self.profiles.get_or_create(follower)
                before = maintainer.stats.refreshes
                slate = maintainer.on_arrival(
                    msg_id,
                    timestamp,
                    message_vec,
                    candidates,
                    profile_vec,
                    profile.epoch,
                    state.location,
                )
                refreshed = maintainer.stats.refreshes > before
                self.stats.incremental_refreshes += 1 if refreshed else 0
                certified, fell_back = not refreshed, refreshed
            else:  # EngineMode.EXACT
                slate = self.personalizer.exact_slate(
                    message_vec,
                    profile_vec,
                    state.location,
                    timestamp,
                    self.config.k,
                )
                certified, fell_back = True, True

            self.stats.deliveries += 1
            if certified and not fell_back:
                self.stats.certified_deliveries += 1
            if fell_back:
                self.stats.fallback_deliveries += 1
            if not certified and not fell_back:
                self.stats.approximate_deliveries += 1

            revenue += self._charge(slate, timestamp)
            num_impressions += len(slate)
            if self.ctr is not None:
                for scored in slate:
                    self.ctr.record_impression(scored.ad_id)
            if self.config.collect_deliveries:
                deliveries.append(
                    DeliveryResult(
                        user_id=follower,
                        slate=slate,
                        certified=certified,
                        fell_back=fell_back,
                    )
                )

        self.stats.impressions += num_impressions
        self.stats.revenue += revenue
        return PostResult(
            msg_id=msg_id,
            author_id=author_id,
            timestamp=timestamp,
            num_deliveries=len(followers),
            num_impressions=num_impressions,
            revenue=revenue,
            deliveries=tuple(deliveries),
        )

    def _charge(self, slate: tuple[ScoredAd, ...], timestamp: float) -> float:
        """GSP-price and debit one slate; returns the revenue collected."""
        if not self.config.charge_impressions or not slate:
            return 0.0
        live = [
            scored.ad_id
            for scored in slate
            if self.corpus.is_active(scored.ad_id)
        ]
        if not live:
            return 0.0
        outcome = run_gsp_auction(
            self.corpus, live, reserve_price=self.config.reserve_price
        )
        for ad_id, price in zip(outcome.ad_ids, outcome.prices):
            self.budget.charge(ad_id, price)
        return outcome.revenue

    # -- campaign churn ------------------------------------------------------

    def launch_campaign(self, ad, timestamp: float) -> None:
        """Add a new ad mid-stream.

        The corpus broadcast keeps every derived structure current (index,
        budget manager, static list); per-user profile-candidate caches are
        invalidated by the corpus add-epoch bump, so the new ad is eligible
        for the very next delivery.
        """
        self._clock.advance_to(max(self._clock.now, timestamp))
        self.corpus.add(ad)
        self._launched_ads.append(ad)

    def end_campaign(self, ad_id: int, timestamp: float) -> None:
        """Deactivate a campaign before its budget runs out (idempotent:
        ending an already-retired campaign is a no-op)."""
        self._clock.advance_to(max(self._clock.now, timestamp))
        if self.corpus.is_active(ad_id):
            self.corpus.retire(ad_id)

    def record_click(self, ad_id: int) -> None:
        """Report a click on a previously-served impression.

        A no-op unless ``ctr_feedback`` is enabled — callers (the click
        simulator, a real frontend) do not need to know the configuration.
        """
        if self.ctr is not None:
            self.ctr.record_click(ad_id)

    def slate_for_message(
        self, user_id: int, text: str, timestamp: float
    ) -> tuple[ScoredAd, ...]:
        """One-off exact slate for a (user, message) pair — a read-only query
        that does not touch profiles, contexts or budgets."""
        state = self._state(user_id)
        return self.personalizer.exact_slate(
            self.vectorize(text),
            self._profile_vector(user_id, state),
            state.location,
            timestamp,
            self.config.k,
        )

    def standing_slate(self, user_id: int) -> tuple[ScoredAd, ...]:
        """Incremental mode: the user's slate as of their last delivery."""
        if self.config.mode is not EngineMode.INCREMENTAL:
            raise ConfigError(
                "standing_slate() requires EngineMode.INCREMENTAL; "
                "shared/exact modes rank per message via post()"
            )
        state = self._state(user_id)
        if state.incremental is None:
            return ()
        return state.incremental.slate
