"""The context-aware advertising engine facade: post → pipeline → result.

``AdEngine`` wires every substrate into one
:class:`~repro.core.services.EngineServices`, builds the staged
:class:`~repro.core.pipeline.DeliveryPipeline`, and exposes the
stream-facing operations: :meth:`post` (a user publishes a message; every
follower's feed receives it and gets an ad slate), :meth:`post_event`
(the shard-portable variant consuming a pre-vectorized
:class:`~repro.core.pipeline.PostEvent`), :meth:`post_batch`,
:meth:`checkin` (location update) and :meth:`slate_for_message` (one-off
exact query, used by examples and the effectiveness harness).

Mode dispatch (:class:`~repro.core.config.EngineMode` — SHARED /
INCREMENTAL / EXACT) lives entirely in the pipeline's
``PersonalizeStage`` implementations, selected once at wiring time; the
facade's delivery path is mode-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.ads.budget import BudgetManager
from repro.ads.corpus import AdCorpus
from repro.ads.ctr import CtrEstimator
from repro.core.candidates import SharedCandidateGenerator
from repro.core.config import EngineConfig, EngineMode
from repro.core.pipeline import (
    DeliveryOutcome,
    DeliveryPipeline,
    PostEvent,
    TextVectorizeStage,
)
from repro.core.rerank import Personalizer
from repro.core.scoring import ScoredAd, ScoringModel
from repro.core.services import EngineServices, EngineStats, UserState, UserStateStore
from repro.errors import ConfigError
from repro.geo.point import GeoPoint
from repro.graph.social import SocialGraph
from repro.index.inverted import AdInvertedIndex
from repro.obs.registry import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.trace import NOOP_REQUEST_TRACER, NoopRequestTracer, RequestTracer
from repro.obs.tracer import NoopTracer, StageTracer
from repro.profiles.profile import ProfileStore
from repro.qos.controller import QosController
from repro.stream.clock import SimClock
from repro.text.tokenizer import Tokenizer
from repro.text.vectorizer import TfidfVectorizer
from repro.util.sparse import MutableSparseVector

__all__ = [
    "AdEngine",
    "DeliveryResult",
    "EngineStats",
    "PostResult",
]


@dataclass(frozen=True, slots=True)
class DeliveryResult:
    """One follower's slate for one delivered message."""

    user_id: int
    slate: tuple[ScoredAd, ...]
    certified: bool
    fell_back: bool
    exact: bool = False
    degraded: bool = False
    revenue: float = 0.0


@dataclass(frozen=True, slots=True)
class PostResult:
    """Everything that happened when one message was posted.

    The QoS fields stay at their zero defaults unless a
    :class:`~repro.qos.controller.QosController` is attached:
    ``num_deliveries`` then counts *admitted* deliveries only, with
    ``num_shed`` holding the rest of the fan-out and ``revenue_shed``
    the upper bound on what those shed slates could have earned.
    """

    msg_id: int
    author_id: int
    timestamp: float
    num_deliveries: int
    num_impressions: int
    revenue: float
    deliveries: tuple[DeliveryResult, ...]
    num_shed: int = 0
    num_degraded: int = 0
    revenue_shed: float = 0.0


class AdEngine:
    """The full context-aware ad recommendation pipeline, as a facade."""

    def __init__(
        self,
        corpus: AdCorpus,
        graph: SocialGraph,
        vectorizer: TfidfVectorizer,
        *,
        config: EngineConfig | None = None,
        tokenizer: Tokenizer | None = None,
        text_vectorizer=None,
        tracer: StageTracer | None = None,
        metrics: "MetricsRegistry | None" = None,
        qos: "QosController | None" = None,
        request_tracer: "RequestTracer | None" = None,
    ) -> None:
        """``text_vectorizer`` (optional ``str -> sparse vector``) replaces
        the default tokenize→TF-IDF pipeline — how the concept-enriched
        :class:`~repro.text.hybrid.HybridVectorizer` plugs in.

        ``tracer`` (optional :class:`~repro.obs.tracer.StageTracer`)
        receives one span per pipeline stage per event; the default
        :class:`~repro.obs.tracer.NoopTracer` observes nothing.
        ``metrics`` (optional :class:`~repro.obs.registry.MetricsRegistry`)
        is the live side: windowed per-stage latency histograms plus
        posts/deliveries/impressions/revenue counters, disabled by default.
        ``qos`` (optional :class:`~repro.qos.controller.QosController`)
        attaches the QoS control plane — admission control and the
        degradation ladder; with the ``None`` default the delivery path is
        byte-identical to an engine without one.
        ``request_tracer`` (optional
        :class:`~repro.obs.trace.RequestTracer`) attaches distributed
        request tracing: a :class:`~repro.obs.trace.TraceContext` is
        minted per event in :meth:`make_event` and each delivery records
        a per-process trace segment; the shared noop default observes
        nothing and leaves events byte-identical.
        """
        config = config or EngineConfig()
        self.vectorizer = vectorizer
        self.tokenizer = tokenizer or Tokenizer()
        budget = BudgetManager(
            corpus,
            campaign_start=0.0,
            campaign_end=config.campaign_duration_s,
            pacing_enabled=config.pacing_enabled,
        )
        index = AdInvertedIndex.from_corpus(corpus, subscribe=True)
        ctr = (
            CtrEstimator(
                prior_ctr=config.ctr_prior,
                prior_strength=config.ctr_prior_strength,
            )
            if config.ctr_feedback
            else None
        )
        scoring = ScoringModel(
            corpus,
            config.weights,
            budget_manager=budget,
            ctr_estimator=ctr,
        )
        learner = None
        if config.personalize == "linucb":
            from repro.learn.linucb import LinUcbLearner

            learner = LinUcbLearner(
                alpha=config.alpha_ucb,
                ridge_lambda=config.linucb_lambda,
                sync_interval_s=config.linucb_sync_interval_s,
                frozen=config.linucb_frozen,
                metrics=metrics if metrics is not None else NULL_METRICS,
            )
        self.services = EngineServices(
            config=config,
            corpus=corpus,
            index=index,
            scoring=scoring,
            graph=graph,
            budget=budget,
            profiles=ProfileStore(config.profile_half_life_s),
            ctr=ctr,
            clock=SimClock(),
            users=UserStateStore(graph),
            tracer=tracer or NoopTracer(),
            metrics=metrics if metrics is not None else NULL_METRICS,
            request_tracer=(
                request_tracer if request_tracer is not None
                else NOOP_REQUEST_TRACER
            ),
            qos=qos,
            learner=learner,
        )
        probe_depth = (
            config.overfetch
            if config.mode is EngineMode.SHARED
            else config.shadow_size
        )
        self.candidate_gen = SharedCandidateGenerator(
            index, probe_depth, searcher=config.searcher
        )
        self.personalizer = Personalizer(self.services)
        self.pipeline = DeliveryPipeline.for_services(
            self.services,
            vectorize=TextVectorizeStage(
                self.vectorizer, self.tokenizer, custom=text_vectorizer
            ),
            candidate_generator=self.candidate_gen,
            personalizer=self.personalizer,
        )
        self._next_msg_id = 0
        # Ads launched after construction (checkpoints must replay them,
        # since a restore target is built from the base catalog only).
        self._launched_ads: list = []
        corpus.subscribe(on_retire=self._count_retirement)

    def _count_retirement(self, _ad) -> None:
        self.stats.retired_ads += 1

    # -- services delegation ------------------------------------------------

    @property
    def config(self) -> EngineConfig:
        return self.services.config

    @property
    def corpus(self) -> AdCorpus:
        return self.services.corpus

    @property
    def graph(self) -> SocialGraph:
        return self.services.graph

    @property
    def index(self) -> AdInvertedIndex:
        return self.services.index

    @property
    def budget(self) -> BudgetManager:
        return self.services.budget

    @property
    def scoring(self) -> ScoringModel:
        return self.services.scoring

    @property
    def profiles(self) -> ProfileStore:
        return self.services.profiles

    @property
    def ctr(self) -> CtrEstimator | None:
        return self.services.ctr

    @property
    def stats(self) -> EngineStats:
        return self.services.stats

    @property
    def tracer(self) -> StageTracer:
        return self.services.tracer

    @property
    def metrics(self) -> "MetricsRegistry | NullMetrics":
        return self.services.metrics

    @property
    def qos(self) -> "QosController | None":
        return self.services.qos

    @property
    def request_tracer(self) -> "RequestTracer | NoopRequestTracer":
        return self.services.request_tracer

    # -- user management ---------------------------------------------------

    def register_user(self, user_id: int, location: GeoPoint | None = None) -> None:
        """Make a user known to the engine (and the graph, if absent)."""
        if not self.graph.has_user(user_id):
            self.graph.add_user(user_id)
        state = self.services.users.register(user_id)
        if location is not None:
            state.location = location

    def _state(self, user_id: int) -> UserState:
        return self.services.users.state(user_id)

    def checkin(self, user_id: int, point: GeoPoint, timestamp: float) -> None:
        """Record a location update."""
        self.services.clock.advance_to_at_least(timestamp)
        self._state(user_id).location = point

    def location_of(self, user_id: int) -> GeoPoint | None:
        return self._state(user_id).location

    # -- text -----------------------------------------------------------------

    def vectorize(self, text: str) -> MutableSparseVector:
        """Text → unit sparse vector (custom pipeline when configured)."""
        return self.pipeline.vectorize(text)

    # -- the stream-facing operations -------------------------------------------

    def make_event(
        self,
        author_id: int,
        text: str,
        timestamp: float,
        *,
        msg_id: int | None = None,
    ) -> PostEvent:
        """Vectorize one post into a shard-portable :class:`PostEvent`.

        This is the trace edge: when request tracing is enabled the event
        leaves here carrying a freshly minted
        :class:`~repro.obs.trace.TraceContext` (deterministic in
        ``(msg_id, seed)``), which every downstream process honours.
        """
        if msg_id is None:
            msg_id = self._next_msg_id
        request_tracer = self.services.request_tracer
        return PostEvent(
            msg_id=msg_id,
            author_id=author_id,
            timestamp=timestamp,
            message_vec=self.pipeline.vectorize(text),
            text=text,
            trace=(
                request_tracer.mint(msg_id)
                if request_tracer.enabled
                else None
            ),
        )

    def post(
        self,
        author_id: int,
        text: str,
        timestamp: float,
        *,
        msg_id: int | None = None,
    ) -> PostResult:
        """Publish a message: update the author's profile, fan out to every
        follower, produce (and charge) an ad slate per delivery."""
        return self.post_event(
            self.make_event(author_id, text, timestamp, msg_id=msg_id)
        )

    def post_event(self, event: PostEvent) -> PostResult:
        """Publish a pre-vectorized event — the per-shard batch entry point
        the router uses so a post is vectorized once, not once per shard."""
        request_tracer = self.services.request_tracer
        if not (request_tracer.enabled and event.trace is not None):
            self._ingest(event)
            followers = sorted(self.graph.followers(event.author_id))
            outcomes = self.pipeline.deliver_batch(event, followers)
            return self._assemble_result(event, outcomes)
        segment = request_tracer.start(event.trace, "post")
        try:
            self._ingest(event)
            followers = sorted(self.graph.followers(event.author_id))
            outcomes = self.pipeline.deliver_batch(event, followers)
            result = self._assemble_result(event, outcomes)
        except Exception as exc:
            segment.mark_error(repr(exc))
            request_tracer.finish(segment)
            raise
        segment.set_attrs(
            msg_id=event.msg_id,
            author_id=event.author_id,
            deliveries=result.num_deliveries,
            shed=result.num_shed,
            degraded=result.num_degraded,
        )
        request_tracer.finish(segment)
        return result

    def ingest_event(self, event: PostEvent) -> None:
        """Apply an event's stream bookkeeping (clock, watermark, author
        profile) without delivering — the shard-reintegration entry point:
        a recovered shard replays the ingestion it missed so its author
        profiles converge with the no-fault timeline."""
        self._ingest(event)

    def deliver_event_to(
        self,
        event: PostEvent,
        followers: Sequence[int],
        *,
        ingest: bool = False,
        candidates_only: bool = False,
    ) -> PostResult:
        """Fan one event out to an explicit follower list.

        The failover entry point: a fallback shard serves another shard's
        followers without ingesting the event (``ingest=False``), so the
        home shard's eventual reintegration replay is the only profile
        update and post-recovery state matches the no-fault run.
        ``candidates_only=True`` serves the shared profile-less slate —
        the fallback shard holds no profile state for foreign followers.
        """
        request_tracer = self.services.request_tracer
        segment = None
        if request_tracer.enabled and event.trace is not None:
            segment = request_tracer.start(
                event.trace,
                "deliver_redirect" if not ingest else "deliver",
            )
            segment.set_attrs(candidates_only=candidates_only)
        try:
            if ingest:
                self._ingest(event)
            else:
                self.services.clock.advance_to_at_least(event.timestamp)
            outcomes = self.pipeline.deliver_batch(
                event, sorted(followers), candidates_only=candidates_only
            )
            result = self._assemble_result(event, outcomes)
        except Exception as exc:
            if segment is not None:
                segment.mark_error(repr(exc))
                request_tracer.finish(segment)
            raise
        if segment is not None:
            segment.set_attrs(
                msg_id=event.msg_id, deliveries=result.num_deliveries
            )
            request_tracer.finish(segment)
        return result

    def post_batch(
        self, posts: Iterable, *, results: bool = True
    ) -> list[PostResult]:
        """Publish a timestamp-ordered batch of posts (objects with
        ``author_id``/``text``/``timestamp`` and optional ``msg_id``).

        The harness-facing bulk entry point: one facade call per batch
        instead of one per post.
        """
        collected: list[PostResult] = []
        for post in posts:
            result = self.post(
                post.author_id,
                post.text,
                post.timestamp,
                msg_id=getattr(post, "msg_id", None),
            )
            if results:
                collected.append(result)
        return collected

    def _ingest(self, event: PostEvent) -> None:
        """Stream bookkeeping for one event: clock, id watermark, author
        profile update."""
        self.services.clock.advance_to_at_least(event.timestamp)
        learner = self.services.learner
        if learner is not None and learner.auto_sync:
            # Epoch boundary: fold pending bandit updates into the serving
            # snapshot before this event's deliveries. Shard engines skip
            # this (auto_sync off) — their router coordinates the fold.
            learner.maybe_sync(event.timestamp)
        self._next_msg_id = max(self._next_msg_id, event.msg_id + 1)
        author_state = self._state(event.author_id)
        self.profiles.get_or_create(event.author_id).update(
            event.message_vec, event.timestamp
        )
        author_state.profile_vec_epoch = -1  # invalidate cache
        self.stats.posts += 1
        metrics = self.services.metrics
        if metrics.enabled:
            metrics.inc("posts")

    def _assemble_result(
        self,
        event: PostEvent,
        outcomes: Sequence[DeliveryOutcome],
    ) -> PostResult:
        num_impressions = 0
        num_degraded = 0
        revenue = 0.0
        deliveries: list[DeliveryResult] = []
        collect = self.config.collect_deliveries
        for outcome in outcomes:
            num_impressions += len(outcome.slate)
            revenue += outcome.revenue
            if outcome.degraded:
                num_degraded += 1
            if collect:
                deliveries.append(
                    DeliveryResult(
                        user_id=outcome.user_id,
                        slate=outcome.slate,
                        certified=outcome.certified,
                        fell_back=outcome.fell_back,
                        exact=outcome.exact,
                        degraded=outcome.degraded,
                        revenue=outcome.revenue,
                    )
                )
        num_shed, revenue_shed = self.pipeline.pop_batch_shed()
        return PostResult(
            msg_id=event.msg_id,
            author_id=event.author_id,
            timestamp=event.timestamp,
            num_deliveries=len(outcomes),
            num_impressions=num_impressions,
            revenue=revenue,
            deliveries=tuple(deliveries),
            num_shed=num_shed,
            num_degraded=num_degraded,
            revenue_shed=revenue_shed,
        )

    # -- campaign churn ------------------------------------------------------

    def launch_campaign(self, ad, timestamp: float) -> None:
        """Add a new ad mid-stream.

        The corpus broadcast keeps every derived structure current (index,
        budget manager, static list); per-user profile-candidate caches are
        invalidated by the corpus add-epoch bump, so the new ad is eligible
        for the very next delivery.
        """
        self.services.clock.advance_to_at_least(timestamp)
        self.corpus.add(ad)
        self._launched_ads.append(ad)

    def end_campaign(self, ad_id: int, timestamp: float) -> None:
        """Deactivate a campaign before its budget runs out (idempotent:
        ending an already-retired campaign is a no-op)."""
        self.services.clock.advance_to_at_least(timestamp)
        if self.corpus.is_active(ad_id):
            self.corpus.retire(ad_id)

    def record_click(
        self,
        ad_id: int,
        *,
        user_id: int | None = None,
        slot_index: int | None = None,
    ) -> None:
        """Report a click on a previously-served impression.

        ``user_id``/``slot_index`` identify the delivering slate position;
        with them the LinUCB learner (when configured) attributes the
        reward to the exposure's stored serving context. Legacy positional
        calls still feed the CTR estimator. A no-op unless click feedback
        of some form is enabled — callers (the click simulator, a real
        frontend) do not need to know the configuration.
        """
        if self.ctr is not None:
            self.ctr.record_click(ad_id)
        learner = self.services.learner
        if learner is not None:
            learner.record_click(ad_id, user_id=user_id, slot_index=slot_index)

    def slate_for_message(
        self, user_id: int, text: str, timestamp: float
    ) -> tuple[ScoredAd, ...]:
        """One-off exact slate for a (user, message) pair — a read-only query
        that does not touch profiles, contexts or budgets."""
        state = self._state(user_id)
        _, profile_vec = self.services.profile_of(user_id, state)
        return self.personalizer.exact_slate(
            self.vectorize(text),
            profile_vec,
            state.location,
            timestamp,
            self.config.k,
        )

    def standing_slate(self, user_id: int) -> tuple[ScoredAd, ...]:
        """Incremental mode: the user's slate as of their last delivery."""
        if self.config.mode is not EngineMode.INCREMENTAL:
            raise ConfigError(
                "standing_slate() requires EngineMode.INCREMENTAL; "
                "shared/exact modes rank per message via post()"
            )
        state = self._state(user_id)
        if state.incremental is None:
            return ()
        return state.incremental.slate
