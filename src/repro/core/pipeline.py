"""The staged delivery pipeline: post → vectorize → probe → fan-out.

The engine's hot path is an explicit pipeline of five pluggable stages
(cf. the ingest→embed→blend→observe decomposition production feed-ad
systems use):

* :class:`VectorizeStage` — text → unit sparse vector, once per message;
* :class:`CandidateStage` — the per-message shared content probe (or
  nothing, for the per-delivery EXACT baseline);
* :class:`PersonalizeStage` — per-follower slate construction; the three
  :class:`~repro.core.config.EngineMode`\\ s are three implementations
  selected at wiring time, so the fan-out loop has no mode branches;
* :class:`ChargeStage` — GSP pricing + budget debit per served slate;
* :class:`FeedbackStage` — impression bookkeeping for the CTR estimator.

:class:`DeliveryPipeline` wires the stages over one
:class:`~repro.core.services.EngineServices` and exposes the batch entry
point :meth:`DeliveryPipeline.deliver_batch`: one :class:`PostEvent` in,
one :class:`DeliveryOutcome` per follower out, with the shared probe and
the per-follower profile-vector/location lookups amortised across the
whole fan-out. The sharded router and the stream simulator drive batches
directly; :class:`~repro.core.engine.AdEngine` survives as a thin facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import NamedTuple, Protocol, runtime_checkable

from repro.ads.auction import run_gsp_auction
from repro.core.candidates import CandidateSet, SharedCandidateGenerator
from repro.core.config import EngineMode
from repro.core.incremental import IncrementalTopK
from repro.core.rerank import Personalizer
from repro.core.scoring import ScoredAd
from repro.core.services import EngineServices, UserState
from repro.errors import ConfigError
from repro.obs.trace import TraceContext
from repro.profiles.profile import UserProfile
from repro.qos.admission import slate_value_bound
from repro.text.tokenizer import Tokenizer
from repro.text.vectorizer import TfidfVectorizer
from repro.util.sparse import MutableSparseVector, SparseVector


@dataclass(frozen=True, slots=True)
class PostEvent:
    """One published message, vectorized once, ready to fan out.

    Events are shard-portable: the sharded router vectorizes a post once
    and hands the same event to every shard owning a follower.
    """

    msg_id: int
    author_id: int
    timestamp: float
    message_vec: SparseVector
    text: str | None = None
    # Distributed tracing context, minted once at the router/simulator
    # edge and carried with the event across every shard and RPC hop.
    # None when request tracing is disabled — the event pickles and
    # hashes identically to a pre-tracing event in that case.
    trace: TraceContext | None = None


@dataclass(frozen=True, slots=True)
class DeliveryOutcome:
    """One follower's slate for one event, plus how it was produced."""

    user_id: int
    slate: tuple[ScoredAd, ...]
    certified: bool
    fell_back: bool
    exact: bool
    revenue: float
    # True when the slate was served under a QoS degradation rung.
    degraded: bool = False


class PersonalizedDelivery(NamedTuple):
    """What a :class:`PersonalizeStage` reports back to the pipeline."""

    slate: tuple[ScoredAd, ...]
    certified: bool
    fell_back: bool
    exact: bool


# -- stage protocols ---------------------------------------------------------


@runtime_checkable
class VectorizeStage(Protocol):
    """Text → unit sparse vector."""

    def vectorize(self, text: str) -> MutableSparseVector: ...


@runtime_checkable
class CandidateStage(Protocol):
    """Per-message shared candidate generation (None = no sharing)."""

    def candidates_for(self, event: PostEvent) -> CandidateSet | None: ...


@runtime_checkable
class PersonalizeStage(Protocol):
    """Per-follower slate construction — mode dispatch lives here."""

    def personalize(
        self,
        event: PostEvent,
        candidates: CandidateSet | None,
        user_id: int,
        state: UserState,
        profile: UserProfile,
        profile_vec: SparseVector,
    ) -> PersonalizedDelivery: ...


@runtime_checkable
class ChargeStage(Protocol):
    """Price and debit one served slate; returns revenue collected."""

    def charge(self, slate: tuple[ScoredAd, ...], timestamp: float) -> float: ...


@runtime_checkable
class FeedbackStage(Protocol):
    """Observe one served slate (impression bookkeeping)."""

    def observe_impressions(self, slate: tuple[ScoredAd, ...]) -> None: ...


# -- concrete stages ---------------------------------------------------------


class TextVectorizeStage:
    """tokenize → TF-IDF, or a custom ``str -> sparse vector`` override
    (how the concept-enriched hybrid vectorizer plugs in)."""

    def __init__(
        self,
        vectorizer: TfidfVectorizer,
        tokenizer: Tokenizer,
        custom=None,
    ) -> None:
        self._vectorizer = vectorizer
        self._tokenizer = tokenizer
        self._custom = custom

    def vectorize(self, text: str) -> MutableSparseVector:
        if self._custom is not None:
            return self._custom(text)
        return self._vectorizer.transform(self._tokenizer.tokenize(text))


class SharedProbeStage:
    """One content probe per message, reused across the whole fan-out.

    Under an attached QoS controller the probe depth follows the current
    degradation rung (a shallower K′ is the ladder's cheapest rung)."""

    def __init__(self, services: EngineServices, generator: SharedCandidateGenerator) -> None:
        self._services = services
        self._generator = generator
        # Searcher-kind attribution for stage traces: "candidate" stays
        # the taxonomy span, and this extra name lets T3 split probe time
        # per searcher without guessing from the engine config.
        self.kind = generator.kind
        self.span_name = f"candidate[{generator.kind}]"

    def candidates_for(self, event: PostEvent) -> CandidateSet:
        services = self._services
        generator = self._generator
        stats = services.stats
        stats.shared_probes += 1
        qos = services.qos
        depth = None
        if qos is not None and qos.degrading:
            depth = qos.probe_depth(generator.overfetch, services.config.k)
        result = generator.generate(event.message_vec, depth=depth)
        stats.probe_depth_total += generator.last_probe_depth
        metrics = services.metrics
        if metrics.enabled:
            metrics.inc("probe_depth_total", generator.last_probe_depth)
        return result


class NoProbeStage:
    """EXACT mode: the per-delivery baseline never shares candidates."""

    kind = None
    span_name = None

    def candidates_for(self, event: PostEvent) -> None:
        return None


class SharedPersonalizeStage:
    """SHARED mode: union-score the three candidate sources, certify, and
    fall back to one exact probe when certification fails (the QoS rung
    may shrink k and suppress the fallback probe)."""

    def __init__(self, services: EngineServices, personalizer: Personalizer) -> None:
        self._services = services
        self._personalizer = personalizer

    @property
    def supports_batch(self) -> bool:
        """Whether the personalizer can take a whole fan-out at once
        (vector mode's shared candidate matrix)."""
        return self._personalizer.batched

    def personalize_batch(
        self, event, candidates, resolved
    ) -> list[PersonalizedDelivery]:
        """Batch form of :meth:`personalize` over resolved followers
        ``(user_id, state, profile, profile_vec)``. Only called on the
        undegraded, non-mutating path (no QoS rung, no charging, no CTR
        feedback), where it is delivery-for-delivery identical to the
        scalar form."""
        results = self._personalizer.slate_batch(
            candidates,
            event.message_vec,
            [
                (user_id, profile_vec, profile.epoch, state.location)
                for user_id, state, profile, profile_vec in resolved
            ],
            event.timestamp,
            self._services.config.k,
        )
        return [
            PersonalizedDelivery(
                result.slate, result.certified, result.fell_back, False
            )
            for result in results
        ]

    def personalize(
        self, event, candidates, user_id, state, profile, profile_vec
    ) -> PersonalizedDelivery:
        qos = self._services.qos
        k = self._services.config.k
        allow_fallback = True
        if qos is not None and qos.degrading:
            k = qos.slate_k(k)
            allow_fallback = qos.allow_fallback
        result = self._personalizer.slate_for(
            candidates,
            event.message_vec,
            user_id,
            profile_vec,
            profile.epoch,
            state.location,
            event.timestamp,
            k,
            allow_fallback=allow_fallback,
        )
        return PersonalizedDelivery(
            result.slate, result.certified, result.fell_back, False
        )


class IncrementalPersonalizeStage:
    """INCREMENTAL mode: fold the arrival into the user's standing top-k."""

    def __init__(self, services: EngineServices, personalizer: Personalizer) -> None:
        self._services = services
        self._personalizer = personalizer

    def _maintainer_of(self, user_id: int, state: UserState) -> IncrementalTopK:
        if state.incremental is None:
            state.incremental = IncrementalTopK(
                user_id=user_id,
                context=self._services.context_of(state),
                services=self._services,
                personalizer=self._personalizer,
            )
        return state.incremental

    def personalize(
        self, event, candidates, user_id, state, profile, profile_vec
    ) -> PersonalizedDelivery:
        maintainer = self._maintainer_of(user_id, state)
        before = maintainer.stats.refreshes
        slate = maintainer.on_arrival(
            event.msg_id,
            event.timestamp,
            event.message_vec,
            candidates,
            profile_vec,
            profile.epoch,
            state.location,
        )
        refreshed = maintainer.stats.refreshes > before
        if refreshed:
            self._services.stats.incremental_refreshes += 1
        return PersonalizedDelivery(slate, not refreshed, refreshed, False)


class ExactPersonalizeStage:
    """EXACT mode: one exact combined-query probe per delivery (the strong
    baseline). Deliveries count as ``exact``, never as fallbacks."""

    def __init__(self, services: EngineServices, personalizer: Personalizer) -> None:
        self._services = services
        self._personalizer = personalizer

    def personalize(
        self, event, candidates, user_id, state, profile, profile_vec
    ) -> PersonalizedDelivery:
        qos = self._services.qos
        k = self._services.config.k
        if qos is not None and qos.degrading:
            k = qos.slate_k(k)
        slate = self._personalizer.exact_slate(
            event.message_vec,
            profile_vec,
            state.location,
            event.timestamp,
            k,
        )
        return PersonalizedDelivery(slate, True, False, True)


class GspChargeStage:
    """GSP-price the live slate entries and debit their budgets."""

    def __init__(self, services: EngineServices) -> None:
        self._corpus = services.corpus
        self._budget = services.budget
        self._reserve_price = services.config.reserve_price

    def charge(self, slate: tuple[ScoredAd, ...], timestamp: float) -> float:
        if not slate:
            return 0.0
        corpus = self._corpus
        live = [
            scored.ad_id for scored in slate if corpus.is_active(scored.ad_id)
        ]
        if not live:
            return 0.0
        outcome = run_gsp_auction(
            corpus, live, reserve_price=self._reserve_price
        )
        for ad_id, price in zip(outcome.ad_ids, outcome.prices):
            self._budget.charge(ad_id, price)
        return outcome.revenue


class NoChargeStage:
    """Charging disabled: impressions are free (effectiveness harnesses)."""

    def charge(self, slate: tuple[ScoredAd, ...], timestamp: float) -> float:
        return 0.0


class CtrFeedbackStage:
    """Record one impression per served slate entry."""

    def __init__(self, services: EngineServices) -> None:
        self._ctr = services.ctr

    def observe_impressions(self, slate: tuple[ScoredAd, ...]) -> None:
        record = self._ctr.record_impression
        for scored in slate:
            record(scored.ad_id)


class NoFeedbackStage:
    """Click feedback disabled: impressions leave no trace."""

    def observe_impressions(self, slate: tuple[ScoredAd, ...]) -> None:
        return None


# -- stage selection ---------------------------------------------------------

_PERSONALIZE_STAGES: dict[EngineMode, type] = {
    EngineMode.SHARED: SharedPersonalizeStage,
    EngineMode.INCREMENTAL: IncrementalPersonalizeStage,
    EngineMode.EXACT: ExactPersonalizeStage,
}


def make_personalize_stage(
    services: EngineServices, personalizer: Personalizer
) -> PersonalizeStage:
    """The mode's :class:`PersonalizeStage` — the only mode dispatch on the
    delivery path, resolved once at wiring time."""
    stage_cls = _PERSONALIZE_STAGES.get(services.config.mode)
    if stage_cls is None:
        raise ConfigError(f"unknown engine mode: {services.config.mode!r}")
    stage = stage_cls(services, personalizer)
    if services.learner is not None:
        # Deferred import: repro.learn sits above the core pipeline.
        from repro.learn.linucb import LinUcbRerankStage

        stage = LinUcbRerankStage(services, stage)
    return stage


def make_candidate_stage(
    services: EngineServices, generator: SharedCandidateGenerator
) -> CandidateStage:
    if services.config.mode is EngineMode.EXACT:
        return NoProbeStage()
    return SharedProbeStage(services, generator)


def make_charge_stage(services: EngineServices) -> ChargeStage:
    if not services.config.charge_impressions:
        return NoChargeStage()
    return GspChargeStage(services)


def make_feedback_stage(services: EngineServices) -> FeedbackStage:
    if services.ctr is None:
        return NoFeedbackStage()
    return CtrFeedbackStage(services)


# -- the pipeline ------------------------------------------------------------


class DeliveryPipeline:
    """Stages wired over one :class:`EngineServices`.

    The pipeline owns delivery mechanics only; stream-facing concerns
    (clock, message ids, author profile updates, result assembly) stay on
    the :class:`~repro.core.engine.AdEngine` facade.
    """

    def __init__(
        self,
        services: EngineServices,
        *,
        vectorize: VectorizeStage,
        candidates: CandidateStage,
        personalize: PersonalizeStage,
        charge: ChargeStage,
        feedback: FeedbackStage,
    ) -> None:
        self.services = services
        self.vectorize_stage = vectorize
        self.candidate_stage = candidates
        self.personalize_stage = personalize
        self.charge_stage = charge
        self.feedback_stage = feedback
        # Kind-attributed twin of the "candidate" span (None = no probe).
        self._probe_span = getattr(candidates, "span_name", None)
        # Learner-attributed twin of the "personalize" span (None = static).
        self._personalize_span = getattr(personalize, "span_name", None)
        # Whole-fan-out batching is only sound when nothing downstream
        # can mutate engine state between two followers of one event:
        # charging can retire an exhausted ad and CTR feedback shifts
        # quality multipliers, either of which would make follower i+1
        # see different state than the per-delivery oracle.
        self._batchable = (
            isinstance(charge, NoChargeStage)
            and isinstance(feedback, NoFeedbackStage)
            and getattr(personalize, "supports_batch", False)
        )
        # Per-batch QoS ledger for the facade's result assembly:
        # (deliveries shed, revenue upper bound given up). Reset on read.
        self._batch_shed = 0
        self._batch_revenue_shed = 0.0

    @classmethod
    def for_services(
        cls,
        services: EngineServices,
        *,
        vectorize: VectorizeStage,
        candidate_generator: SharedCandidateGenerator,
        personalizer: Personalizer,
    ) -> "DeliveryPipeline":
        """Default wiring: stages selected from ``services.config``."""
        return cls(
            services,
            vectorize=vectorize,
            candidates=make_candidate_stage(services, candidate_generator),
            personalize=make_personalize_stage(services, personalizer),
            charge=make_charge_stage(services),
            feedback=make_feedback_stage(services),
        )

    def vectorize(self, text: str) -> MutableSparseVector:
        services = self.services
        tracer = services.tracer
        metrics = services.metrics
        if not (tracer.enabled or metrics.enabled):
            return self.vectorize_stage.vectorize(text)
        started = perf_counter()
        vec = self.vectorize_stage.vectorize(text)
        elapsed = perf_counter() - started
        if tracer.enabled:
            tracer.record("vectorize", elapsed)
        if metrics.enabled:
            # Vectorization happens before a PostEvent exists, so the
            # stream clock (advanced by ingest) supplies the bucket time.
            clock = services.clock
            metrics.observe_stage(
                "vectorize", elapsed, clock.now if clock is not None else 0.0
            )
        return vec

    def deliver(self, event: PostEvent, follower: int) -> DeliveryOutcome:
        """Single-follower convenience over :meth:`deliver_batch`."""
        return self.deliver_batch(event, (follower,))[0]

    def pop_batch_shed(self) -> tuple[int, float]:
        """The last batch's (shed deliveries, shed revenue bound); resets.

        The facade reads this right after :meth:`deliver_batch` to stamp
        per-event shed accounting onto the post result without widening
        the outcome list's shape."""
        shed = (self._batch_shed, self._batch_revenue_shed)
        self._batch_shed = 0
        self._batch_revenue_shed = 0.0
        return shed

    def _degraded_slate(
        self, candidates: CandidateSet, k: int
    ) -> tuple[ScoredAd, ...]:
        """Candidates-only serving (the deepest non-shed rung): the shared
        probe's top-k active ads, scored on content alone — zero per-user
        work, shared by the whole fan-out."""
        corpus = self.services.corpus
        alpha = self.services.config.weights.alpha
        slate: list[ScoredAd] = []
        for ad_id, content in candidates.entries:
            if not corpus.is_active(ad_id):
                continue
            slate.append(
                ScoredAd(
                    ad_id=ad_id,
                    score=alpha * content,
                    content=content,
                    static=0.0,
                )
            )
            if len(slate) >= k:
                break
        return tuple(slate)

    def deliver_batch(
        self, event: PostEvent, followers, *, candidates_only: bool = False
    ) -> list[DeliveryOutcome]:
        """Fan one event out to ``followers``: one shared probe, then one
        personalize → charge → feedback pass per follower.

        The per-follower state, profile and profile-vector lookups are
        done exactly once each here, so every stage receives them resolved
        — the batch-amortisation point for profile and location access.

        Span emission: one ``candidate`` span per event, then one
        ``personalize``/``charge``/``feedback`` span each plus one wrapping
        ``delivery`` span per follower. Spans feed the whole-run tracer
        and, windowed under the event's stream time, the live metrics
        registry. All timing reads are gated on ``tracer.enabled`` /
        ``metrics.enabled`` so the default noop pair costs one boolean
        check per potential span.
        """
        services = self.services
        stats = services.stats
        users = services.users
        profile_of = services.profile_of
        personalize = self.personalize_stage.personalize
        charge = self.charge_stage.charge
        observe = self.feedback_stage.observe_impressions
        tracer = services.tracer
        metrics = services.metrics
        tracing = tracer.enabled
        metering = metrics.enabled
        observing = tracing or metering
        # The request-trace segment opened by the engine facade for this
        # event (None when request tracing is off or this event has no
        # context). Stage spans are folded into it aggregated per stage
        # name, so trace size is bounded by the taxonomy, not the fan-out.
        request_tracer = services.request_tracer
        active = request_tracer.current if request_tracer.enabled else None
        timing = observing or active is not None
        at = event.timestamp

        def emit(stage: str, elapsed: float) -> None:
            # Only reached on the enabled path — the disabled hot path
            # pays the single `observing` check per potential span.
            if tracing:
                tracer.record(stage, elapsed)
            if metering:
                metrics.observe_stage(stage, elapsed, at)
            if active is not None:
                active.add_stage(stage, elapsed)

        if timing:
            span_started = perf_counter()
        candidates = self.candidate_stage.candidates_for(event)
        if timing:
            probe_elapsed = perf_counter() - span_started
            if observing:
                emit("candidate", probe_elapsed)
                if self._probe_span is not None:
                    emit(self._probe_span, probe_elapsed)
            elif active is not None:
                active.add_stage("candidate", probe_elapsed)

        # QoS consultation, once per batch: admission (value-aware shed)
        # and the current degradation rung. `services.qos is None` is the
        # default — that single check is the whole disabled-path cost.
        qos = services.qos
        degrading = False
        degraded_slate: tuple[ScoredAd, ...] | None = None
        if qos is not None and qos.active:
            value = qos.delivery_value(
                slate_value_bound(candidates, services.corpus, services.config.k)
            )
            decision = qos.admit(at, len(followers), value)
            if decision.shed:
                # All deliveries of one event carry the same value bound,
                # so shedding the fan-out tail drops lowest-value-first
                # across batches while staying deterministic within one.
                followers = list(followers)[: decision.admitted]
                stats.deliveries_shed += decision.shed
                stats.revenue_shed_upper_bound += decision.revenue_shed_upper_bound
                self._batch_shed += decision.shed
                self._batch_revenue_shed += decision.revenue_shed_upper_bound
                if metering:
                    metrics.inc("deliveries_shed", decision.shed)
                    metrics.inc(
                        "revenue_shed_upper_bound",
                        decision.revenue_shed_upper_bound,
                    )
                if active is not None:
                    # Shedding is one of the invisible paths tracing
                    # exists for: stamp it and force-retain the trace.
                    active.add_span(
                        "qos_shed",
                        "shed",
                        count=decision.shed,
                        attrs={
                            "admitted": decision.admitted,
                            "revenue_shed_upper_bound": round(
                                decision.revenue_shed_upper_bound, 6
                            ),
                        },
                    )
                    active.flag("shed")
            degrading = qos.degrading
            if (
                degrading
                and qos.candidates_only
                and candidates is not None
                and len(candidates)
            ):
                degraded_slate = self._degraded_slate(
                    candidates, qos.slate_k(services.config.k)
                )
        if (
            candidates_only
            and degraded_slate is None
            and candidates is not None
            and len(candidates)
        ):
            # Forced profile-less serving — the failover path: a fallback
            # shard serving another shard's followers has no profile state
            # for them, so it serves the shared slate and flags it degraded.
            degrading = True
            degraded_slate = self._degraded_slate(
                candidates, services.config.k
            )
        if active is not None and degrading:
            active.add_span(
                "qos_degrade",
                "degrade",
                attrs={
                    "rung": qos.rung_index if qos is not None else None,
                    "candidates_only": degraded_slate is not None,
                },
            )
            active.flag("degraded")

        # The batched fast path: one shared candidate matrix for the
        # whole fan-out (vector mode, no QoS/charging/feedback). The
        # per-follower personalize span gets the amortised share so span
        # counts and stage totals stay comparable with the scalar path.
        batch_results: list[PersonalizedDelivery] | None = None
        batch_share = 0.0
        if (
            self._batchable
            and degraded_slate is None
            and qos is None
            and candidates is not None
            and followers
        ):
            resolved = []
            for follower in followers:
                state = users.state(follower)
                profile, profile_vec = profile_of(follower, state)
                resolved.append((follower, state, profile, profile_vec))
            if observing:
                span_started = perf_counter()
            batch_results = self.personalize_stage.personalize_batch(
                event, candidates, resolved
            )
            if observing:
                batch_share = (perf_counter() - span_started) / len(resolved)

        # Request tracing without stage observability gets one coarse
        # fan-out span instead of per-follower timing: the per-event cost
        # stays O(1) in the fan-out, which is what keeps the T9 overhead
        # gate (<5% throughput loss at 1% head sampling) honest.
        segment_only = active is not None and not observing
        if segment_only:
            loop_started = perf_counter()
        outcomes: list[DeliveryOutcome] = []
        for index, follower in enumerate(followers):
            if observing:
                delivery_started = perf_counter()
            if degraded_slate is not None:
                slate, certified, fell_back, exact = (
                    degraded_slate, False, False, False
                )
            elif batch_results is not None:
                slate, certified, fell_back, exact = batch_results[index]
            else:
                state = users.state(follower)
                profile, profile_vec = profile_of(follower, state)
                slate, certified, fell_back, exact = personalize(
                    event, candidates, follower, state, profile, profile_vec
                )
            if observing:
                now = perf_counter()
                emit("personalize", (now - delivery_started) + batch_share)
                if self._personalize_span is not None:
                    emit(
                        self._personalize_span,
                        (now - delivery_started) + batch_share,
                    )
                span_started = now
            stats.deliveries += 1
            if degrading:
                stats.deliveries_degraded += 1
            if exact:
                stats.exact_deliveries += 1
            if certified and not fell_back:
                stats.certified_deliveries += 1
            elif fell_back:
                stats.fallback_deliveries += 1
            elif not certified:
                stats.approximate_deliveries += 1
            revenue = charge(slate, event.timestamp)
            if observing:
                now = perf_counter()
                emit("charge", now - span_started)
                span_started = now
            observe(slate)
            if observing:
                now = perf_counter()
                emit("feedback", now - span_started)
                emit("delivery", (now - delivery_started) + batch_share)
            if metering:
                metrics.inc("deliveries")
                metrics.inc("impressions", len(slate))
                metrics.inc("revenue", revenue)
                if degrading:
                    metrics.inc("deliveries_degraded")
            stats.impressions += len(slate)
            stats.revenue += revenue
            outcomes.append(
                DeliveryOutcome(
                    user_id=follower,
                    slate=slate,
                    certified=certified,
                    fell_back=fell_back,
                    exact=exact,
                    revenue=revenue,
                    degraded=degrading,
                )
            )
        if segment_only and outcomes:
            active.add_span(
                "delivery",
                "stage",
                seconds=perf_counter() - loop_started,
                count=len(outcomes),
            )
        return outcomes
