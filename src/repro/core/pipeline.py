"""The staged delivery pipeline: post → vectorize → probe → fan-out.

The engine's hot path is an explicit pipeline of five pluggable stages
(cf. the ingest→embed→blend→observe decomposition production feed-ad
systems use):

* :class:`VectorizeStage` — text → unit sparse vector, once per message;
* :class:`CandidateStage` — the per-message shared content probe (or
  nothing, for the per-delivery EXACT baseline);
* :class:`PersonalizeStage` — per-follower slate construction; the three
  :class:`~repro.core.config.EngineMode`\\ s are three implementations
  selected at wiring time, so the fan-out loop has no mode branches;
* :class:`ChargeStage` — GSP pricing + budget debit per served slate;
* :class:`FeedbackStage` — impression bookkeeping for the CTR estimator.

:class:`DeliveryPipeline` wires the stages over one
:class:`~repro.core.services.EngineServices` and exposes the batch entry
point :meth:`DeliveryPipeline.deliver_batch`: one :class:`PostEvent` in,
one :class:`DeliveryOutcome` per follower out, with the shared probe and
the per-follower profile-vector/location lookups amortised across the
whole fan-out. The sharded router and the stream simulator drive batches
directly; :class:`~repro.core.engine.AdEngine` survives as a thin facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import NamedTuple, Protocol, runtime_checkable

from repro.ads.auction import run_gsp_auction
from repro.core.candidates import CandidateSet, SharedCandidateGenerator
from repro.core.config import EngineMode
from repro.core.incremental import IncrementalTopK
from repro.core.rerank import Personalizer
from repro.core.scoring import ScoredAd
from repro.core.services import EngineServices, UserState
from repro.errors import ConfigError
from repro.profiles.profile import UserProfile
from repro.text.tokenizer import Tokenizer
from repro.text.vectorizer import TfidfVectorizer
from repro.util.sparse import MutableSparseVector, SparseVector


@dataclass(frozen=True, slots=True)
class PostEvent:
    """One published message, vectorized once, ready to fan out.

    Events are shard-portable: the sharded router vectorizes a post once
    and hands the same event to every shard owning a follower.
    """

    msg_id: int
    author_id: int
    timestamp: float
    message_vec: SparseVector
    text: str | None = None


@dataclass(frozen=True, slots=True)
class DeliveryOutcome:
    """One follower's slate for one event, plus how it was produced."""

    user_id: int
    slate: tuple[ScoredAd, ...]
    certified: bool
    fell_back: bool
    exact: bool
    revenue: float


class PersonalizedDelivery(NamedTuple):
    """What a :class:`PersonalizeStage` reports back to the pipeline."""

    slate: tuple[ScoredAd, ...]
    certified: bool
    fell_back: bool
    exact: bool


# -- stage protocols ---------------------------------------------------------


@runtime_checkable
class VectorizeStage(Protocol):
    """Text → unit sparse vector."""

    def vectorize(self, text: str) -> MutableSparseVector: ...


@runtime_checkable
class CandidateStage(Protocol):
    """Per-message shared candidate generation (None = no sharing)."""

    def candidates_for(self, event: PostEvent) -> CandidateSet | None: ...


@runtime_checkable
class PersonalizeStage(Protocol):
    """Per-follower slate construction — mode dispatch lives here."""

    def personalize(
        self,
        event: PostEvent,
        candidates: CandidateSet | None,
        user_id: int,
        state: UserState,
        profile: UserProfile,
        profile_vec: SparseVector,
    ) -> PersonalizedDelivery: ...


@runtime_checkable
class ChargeStage(Protocol):
    """Price and debit one served slate; returns revenue collected."""

    def charge(self, slate: tuple[ScoredAd, ...], timestamp: float) -> float: ...


@runtime_checkable
class FeedbackStage(Protocol):
    """Observe one served slate (impression bookkeeping)."""

    def observe_impressions(self, slate: tuple[ScoredAd, ...]) -> None: ...


# -- concrete stages ---------------------------------------------------------


class TextVectorizeStage:
    """tokenize → TF-IDF, or a custom ``str -> sparse vector`` override
    (how the concept-enriched hybrid vectorizer plugs in)."""

    def __init__(
        self,
        vectorizer: TfidfVectorizer,
        tokenizer: Tokenizer,
        custom=None,
    ) -> None:
        self._vectorizer = vectorizer
        self._tokenizer = tokenizer
        self._custom = custom

    def vectorize(self, text: str) -> MutableSparseVector:
        if self._custom is not None:
            return self._custom(text)
        return self._vectorizer.transform(self._tokenizer.tokenize(text))


class SharedProbeStage:
    """One content probe per message, reused across the whole fan-out."""

    def __init__(self, services: EngineServices, generator: SharedCandidateGenerator) -> None:
        self._stats = services.stats
        self._generator = generator

    def candidates_for(self, event: PostEvent) -> CandidateSet:
        self._stats.shared_probes += 1
        return self._generator.generate(event.message_vec)


class NoProbeStage:
    """EXACT mode: the per-delivery baseline never shares candidates."""

    def candidates_for(self, event: PostEvent) -> None:
        return None


class SharedPersonalizeStage:
    """SHARED mode: union-score the three candidate sources, certify, and
    fall back to one exact probe when certification fails."""

    def __init__(self, services: EngineServices, personalizer: Personalizer) -> None:
        self._config = services.config
        self._personalizer = personalizer

    def personalize(
        self, event, candidates, user_id, state, profile, profile_vec
    ) -> PersonalizedDelivery:
        result = self._personalizer.slate_for(
            candidates,
            event.message_vec,
            user_id,
            profile_vec,
            profile.epoch,
            state.location,
            event.timestamp,
            self._config.k,
        )
        return PersonalizedDelivery(
            result.slate, result.certified, result.fell_back, False
        )


class IncrementalPersonalizeStage:
    """INCREMENTAL mode: fold the arrival into the user's standing top-k."""

    def __init__(self, services: EngineServices, personalizer: Personalizer) -> None:
        self._services = services
        self._personalizer = personalizer

    def _maintainer_of(self, user_id: int, state: UserState) -> IncrementalTopK:
        if state.incremental is None:
            state.incremental = IncrementalTopK(
                user_id=user_id,
                context=self._services.context_of(state),
                services=self._services,
                personalizer=self._personalizer,
            )
        return state.incremental

    def personalize(
        self, event, candidates, user_id, state, profile, profile_vec
    ) -> PersonalizedDelivery:
        maintainer = self._maintainer_of(user_id, state)
        before = maintainer.stats.refreshes
        slate = maintainer.on_arrival(
            event.msg_id,
            event.timestamp,
            event.message_vec,
            candidates,
            profile_vec,
            profile.epoch,
            state.location,
        )
        refreshed = maintainer.stats.refreshes > before
        if refreshed:
            self._services.stats.incremental_refreshes += 1
        return PersonalizedDelivery(slate, not refreshed, refreshed, False)


class ExactPersonalizeStage:
    """EXACT mode: one exact combined-query probe per delivery (the strong
    baseline). Deliveries count as ``exact``, never as fallbacks."""

    def __init__(self, services: EngineServices, personalizer: Personalizer) -> None:
        self._config = services.config
        self._personalizer = personalizer

    def personalize(
        self, event, candidates, user_id, state, profile, profile_vec
    ) -> PersonalizedDelivery:
        slate = self._personalizer.exact_slate(
            event.message_vec,
            profile_vec,
            state.location,
            event.timestamp,
            self._config.k,
        )
        return PersonalizedDelivery(slate, True, False, True)


class GspChargeStage:
    """GSP-price the live slate entries and debit their budgets."""

    def __init__(self, services: EngineServices) -> None:
        self._corpus = services.corpus
        self._budget = services.budget
        self._reserve_price = services.config.reserve_price

    def charge(self, slate: tuple[ScoredAd, ...], timestamp: float) -> float:
        if not slate:
            return 0.0
        corpus = self._corpus
        live = [
            scored.ad_id for scored in slate if corpus.is_active(scored.ad_id)
        ]
        if not live:
            return 0.0
        outcome = run_gsp_auction(
            corpus, live, reserve_price=self._reserve_price
        )
        for ad_id, price in zip(outcome.ad_ids, outcome.prices):
            self._budget.charge(ad_id, price)
        return outcome.revenue


class NoChargeStage:
    """Charging disabled: impressions are free (effectiveness harnesses)."""

    def charge(self, slate: tuple[ScoredAd, ...], timestamp: float) -> float:
        return 0.0


class CtrFeedbackStage:
    """Record one impression per served slate entry."""

    def __init__(self, services: EngineServices) -> None:
        self._ctr = services.ctr

    def observe_impressions(self, slate: tuple[ScoredAd, ...]) -> None:
        record = self._ctr.record_impression
        for scored in slate:
            record(scored.ad_id)


class NoFeedbackStage:
    """Click feedback disabled: impressions leave no trace."""

    def observe_impressions(self, slate: tuple[ScoredAd, ...]) -> None:
        return None


# -- stage selection ---------------------------------------------------------

_PERSONALIZE_STAGES: dict[EngineMode, type] = {
    EngineMode.SHARED: SharedPersonalizeStage,
    EngineMode.INCREMENTAL: IncrementalPersonalizeStage,
    EngineMode.EXACT: ExactPersonalizeStage,
}


def make_personalize_stage(
    services: EngineServices, personalizer: Personalizer
) -> PersonalizeStage:
    """The mode's :class:`PersonalizeStage` — the only mode dispatch on the
    delivery path, resolved once at wiring time."""
    stage_cls = _PERSONALIZE_STAGES.get(services.config.mode)
    if stage_cls is None:
        raise ConfigError(f"unknown engine mode: {services.config.mode!r}")
    return stage_cls(services, personalizer)


def make_candidate_stage(
    services: EngineServices, generator: SharedCandidateGenerator
) -> CandidateStage:
    if services.config.mode is EngineMode.EXACT:
        return NoProbeStage()
    return SharedProbeStage(services, generator)


def make_charge_stage(services: EngineServices) -> ChargeStage:
    if not services.config.charge_impressions:
        return NoChargeStage()
    return GspChargeStage(services)


def make_feedback_stage(services: EngineServices) -> FeedbackStage:
    if services.ctr is None:
        return NoFeedbackStage()
    return CtrFeedbackStage(services)


# -- the pipeline ------------------------------------------------------------


class DeliveryPipeline:
    """Stages wired over one :class:`EngineServices`.

    The pipeline owns delivery mechanics only; stream-facing concerns
    (clock, message ids, author profile updates, result assembly) stay on
    the :class:`~repro.core.engine.AdEngine` facade.
    """

    def __init__(
        self,
        services: EngineServices,
        *,
        vectorize: VectorizeStage,
        candidates: CandidateStage,
        personalize: PersonalizeStage,
        charge: ChargeStage,
        feedback: FeedbackStage,
    ) -> None:
        self.services = services
        self.vectorize_stage = vectorize
        self.candidate_stage = candidates
        self.personalize_stage = personalize
        self.charge_stage = charge
        self.feedback_stage = feedback

    @classmethod
    def for_services(
        cls,
        services: EngineServices,
        *,
        vectorize: VectorizeStage,
        candidate_generator: SharedCandidateGenerator,
        personalizer: Personalizer,
    ) -> "DeliveryPipeline":
        """Default wiring: stages selected from ``services.config``."""
        return cls(
            services,
            vectorize=vectorize,
            candidates=make_candidate_stage(services, candidate_generator),
            personalize=make_personalize_stage(services, personalizer),
            charge=make_charge_stage(services),
            feedback=make_feedback_stage(services),
        )

    def vectorize(self, text: str) -> MutableSparseVector:
        services = self.services
        tracer = services.tracer
        metrics = services.metrics
        if not (tracer.enabled or metrics.enabled):
            return self.vectorize_stage.vectorize(text)
        started = perf_counter()
        vec = self.vectorize_stage.vectorize(text)
        elapsed = perf_counter() - started
        if tracer.enabled:
            tracer.record("vectorize", elapsed)
        if metrics.enabled:
            # Vectorization happens before a PostEvent exists, so the
            # stream clock (advanced by ingest) supplies the bucket time.
            clock = services.clock
            metrics.observe_stage(
                "vectorize", elapsed, clock.now if clock is not None else 0.0
            )
        return vec

    def deliver(self, event: PostEvent, follower: int) -> DeliveryOutcome:
        """Single-follower convenience over :meth:`deliver_batch`."""
        return self.deliver_batch(event, (follower,))[0]

    def deliver_batch(
        self, event: PostEvent, followers
    ) -> list[DeliveryOutcome]:
        """Fan one event out to ``followers``: one shared probe, then one
        personalize → charge → feedback pass per follower.

        The per-follower state, profile and profile-vector lookups are
        done exactly once each here, so every stage receives them resolved
        — the batch-amortisation point for profile and location access.

        Span emission: one ``candidate`` span per event, then one
        ``personalize``/``charge``/``feedback`` span each plus one wrapping
        ``delivery`` span per follower. Spans feed the whole-run tracer
        and, windowed under the event's stream time, the live metrics
        registry. All timing reads are gated on ``tracer.enabled`` /
        ``metrics.enabled`` so the default noop pair costs one boolean
        check per potential span.
        """
        services = self.services
        stats = services.stats
        users = services.users
        profile_of = services.profile_of
        personalize = self.personalize_stage.personalize
        charge = self.charge_stage.charge
        observe = self.feedback_stage.observe_impressions
        tracer = services.tracer
        metrics = services.metrics
        tracing = tracer.enabled
        metering = metrics.enabled
        observing = tracing or metering
        at = event.timestamp

        def emit(stage: str, elapsed: float) -> None:
            # Only reached on the enabled path — the disabled hot path
            # pays the single `observing` check per potential span.
            if tracing:
                tracer.record(stage, elapsed)
            if metering:
                metrics.observe_stage(stage, elapsed, at)

        if observing:
            span_started = perf_counter()
        candidates = self.candidate_stage.candidates_for(event)
        if observing:
            emit("candidate", perf_counter() - span_started)
        outcomes: list[DeliveryOutcome] = []
        for follower in followers:
            if observing:
                delivery_started = perf_counter()
            state = users.state(follower)
            profile, profile_vec = profile_of(follower, state)
            slate, certified, fell_back, exact = personalize(
                event, candidates, follower, state, profile, profile_vec
            )
            if observing:
                now = perf_counter()
                emit("personalize", now - delivery_started)
                span_started = now
            stats.deliveries += 1
            if exact:
                stats.exact_deliveries += 1
            if certified and not fell_back:
                stats.certified_deliveries += 1
            elif fell_back:
                stats.fallback_deliveries += 1
            elif not certified:
                stats.approximate_deliveries += 1
            revenue = charge(slate, event.timestamp)
            if observing:
                now = perf_counter()
                emit("charge", now - span_started)
                span_started = now
            observe(slate)
            if observing:
                now = perf_counter()
                emit("feedback", now - span_started)
                emit("delivery", now - delivery_started)
            if metering:
                metrics.inc("deliveries")
                metrics.inc("impressions", len(slate))
                metrics.inc("revenue", revenue)
            stats.impressions += len(slate)
            stats.revenue += revenue
            outcomes.append(
                DeliveryOutcome(
                    user_id=follower,
                    slate=slate,
                    certified=certified,
                    fell_back=fell_back,
                    exact=exact,
                    revenue=revenue,
                )
            )
        return outcomes
