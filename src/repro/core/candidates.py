"""Per-message shared candidate generation.

A post that fans out to F followers needs F slates, but the content
affinity between the message and any ad is identical across all of them.
The generator therefore runs **one** content-only WAND probe per message,
over-fetching ``overfetch >= k`` candidates, and every delivery reuses the
result. The probe's cut-off score (the weakest fetched candidate) is what
lets each delivery *certify* that its personalised top-k could not contain
any ad outside the shared set — see :mod:`repro.core.rerank`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.index.factory import make_searcher
from repro.index.inverted import AdInvertedIndex
from repro.util.sparse import SparseVector


@dataclass(frozen=True, slots=True)
class CandidateSet:
    """Result of one shared probe.

    ``entries`` are (ad_id, content score) pairs, best first. ``cutoff`` is
    an upper bound on the content score of every ad *not* in the set: the
    score of the weakest fetched candidate when the probe filled up, and
    0.0 when it did not (then every content-matching ad is present and
    outsiders have zero content affinity by the relevance floor).
    """

    entries: tuple[tuple[int, float], ...]
    cutoff: float
    complete: bool

    def __len__(self) -> int:
        return len(self.entries)

    def ad_ids(self) -> list[int]:
        return [ad_id for ad_id, _ in self.entries]


class SharedCandidateGenerator:
    """Runs the shared content probe for each posted message."""

    def __init__(
        self, index: AdInvertedIndex, overfetch: int, *, searcher: str = "ta"
    ) -> None:
        if overfetch < 1:
            raise ConfigError(f"overfetch must be >= 1, got {overfetch}")
        self._searcher = make_searcher(searcher, index)
        self.kind = searcher
        self.overfetch = overfetch
        self.probes = 0
        # Probe-depth accounting: the last effective depth and the running
        # total, so stage traces/metrics can attribute probe cost per
        # searcher kind instead of reading a bare counter.
        self.last_probe_depth = 0
        self.probe_depth_total = 0

    def generate(
        self, message_vec: SparseVector, *, depth: int | None = None
    ) -> CandidateSet:
        """Content top-``overfetch`` for one message vector. ``depth``
        overrides the configured over-fetch for this probe only (the QoS
        ladder shrinks K′ under load); the cutoff certificate stays sound
        at any depth — a shallower probe just certifies less often."""
        if depth is None:
            depth = self.overfetch
        elif depth < 1:
            raise ConfigError(f"depth must be >= 1, got {depth}")
        self.probes += 1
        self.last_probe_depth = depth
        self.probe_depth_total += depth
        results = self._searcher.search(message_vec, depth)
        complete = len(results) < depth
        cutoff = 0.0 if complete else results[-1].score
        return CandidateSet(
            entries=tuple((entry.item, entry.score) for entry in results),
            cutoff=cutoff,
            complete=complete,
        )
