"""Standing per-user top-k, maintained incrementally as the feed slides.

In incremental mode every user carries a *shadow set*: the ``shadow_size``
ads with the highest content affinity to their current feed context,
together with ``cutoff`` — a proven upper bound on the content dot of every
ad **outside** the shadow. On each arrival the maintainer:

1. bounds how much any outside ad could have gained: the arriving message's
   shared probe gives ``g_cut`` (max message-affinity of any unfetched ad),
   and uniform decay ``d <= 1`` only shrinks old content, so the new
   outside bound is ``d·cutoff + g_cut``;
2. exactly rescores only ``shadow ∪ message-probe`` candidates against the
   updated context;
3. certifies the resulting top-k: if its k-th total clears
   ``alpha·(d·cutoff + g_cut) + max_static``, no outside ad can belong in
   the slate and the update cost stayed O(shadow);
4. otherwise falls back to two index probes (an exact combined-query probe
   for the slate, a content probe to rebuild the shadow).

Window evictions and decay only ever *lower* content dots (weights are
non-negative), so they never invalidate the bound — the benchmark suite's
F7 experiment measures how rarely step 4 fires.

Incremental-mode score semantics: the content term is the **raw decayed
dot** with the feed context, not a cosine. Raw dots make the monotonicity
argument above airtight (normalisation could *raise* scores on eviction);
ranking quality is unaffected for any single user at a single instant
because the context norm is a rank-preserving constant there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.candidates import CandidateSet
from repro.core.rerank import Personalizer
from repro.core.scoring import ScoredAd
from repro.core.services import EngineServices
from repro.errors import ConfigError
from repro.geo.point import GeoPoint
from repro.index.factory import make_searcher
from repro.profiles.context import FeedContext
from repro.util.sparse import SparseVector, dot


@dataclass
class IncrementalStats:
    """Per-maintainer counters (aggregated by the engine for F7)."""

    arrivals: int = 0
    certified: int = 0
    refreshes: int = 0
    served_approximate: int = 0


@dataclass
class IncrementalTopK:
    """One user's incrementally-maintained slate.

    All knobs (``k``, ``shadow_size``, ``exact_fallback``, ``searcher``)
    and substrates (scoring, index) come from the shared
    :class:`~repro.core.services.EngineServices`.
    """

    user_id: int
    context: FeedContext
    services: EngineServices
    personalizer: Personalizer
    stats: IncrementalStats = field(default_factory=IncrementalStats)

    def __post_init__(self) -> None:
        config = self.services.config
        self.scoring = self.services.scoring
        self.index = self.services.index
        self.k = config.k
        self.shadow_size = config.shadow_size
        self.exact_fallback = config.exact_fallback
        self.searcher = config.searcher
        if self.shadow_size < self.k:
            raise ConfigError(
                f"shadow_size ({self.shadow_size}) must be >= k ({self.k})"
            )
        self._shadow: list[int] = []
        self._cutoff = 0.0  # bound on content dot of any ad outside _shadow
        self._slate: tuple[ScoredAd, ...] = ()
        self._profile_epoch = -1

    # -- reads -------------------------------------------------------------

    @property
    def slate(self) -> tuple[ScoredAd, ...]:
        """The standing top-k as of the last arrival."""
        return self._slate

    @property
    def shadow(self) -> list[int]:
        return list(self._shadow)

    @property
    def cutoff(self) -> float:
        return self._cutoff

    # -- the arrival path ------------------------------------------------------

    def on_arrival(
        self,
        msg_id: int,
        timestamp: float,
        message_vec: SparseVector,
        message_probe: CandidateSet,
        profile_vec: SparseVector,
        profile_epoch: int,
        location: GeoPoint | None,
    ) -> tuple[ScoredAd, ...]:
        """Fold one delivered message into the standing top-k.

        ``message_probe`` is the message's shared content probe (depth
        ``shadow_size``), computed once per post and reused across the whole
        fan-out.
        """
        self.stats.arrivals += 1
        # The static part depends on the profile; if the user posted since
        # the last refresh, cached certainty about statics is gone.
        force_refresh = profile_epoch != self._profile_epoch
        decay = self._decay_factor(timestamp)
        gain_cut = message_probe.cutoff
        outside_bound = decay * self._cutoff + gain_cut

        self.context.add(msg_id, timestamp, message_vec)

        profile_cands = self.personalizer.profile_candidates(
            self.user_id, profile_vec, profile_epoch
        )
        candidate_ids = set(self._shadow)
        candidate_ids.update(message_probe.ad_ids())
        candidate_ids.update(ad_id for ad_id, _ in profile_cands.entries)
        candidate_ids.update(self.personalizer.static_candidate_ids())
        contents, totals = self._rescore(
            candidate_ids, profile_vec, location, timestamp
        )

        # New shadow: content top-shadow_size among candidates; anything
        # outside is bounded by max(outside_bound, weakest kept content).
        contents.sort(key=lambda pair: (-pair[0], pair[1]))
        kept = contents[: self.shadow_size]
        self._shadow = [ad_id for _, ad_id in kept]
        if len(kept) == self.shadow_size:
            self._cutoff = max(outside_bound, kept[-1][0])
        else:
            self._cutoff = outside_bound

        totals.sort(key=lambda scored: (-scored.score, scored.ad_id))
        slate = tuple(totals[: self.k])
        threshold = slate[-1].score if len(slate) == self.k else float("-inf")
        weights = self.scoring.weights
        certificate = (
            weights.alpha * outside_bound
            + weights.beta * profile_cands.cutoff
            + self.personalizer.static_cutoff()
        )
        certified = not force_refresh and threshold >= certificate

        if certified:
            self.stats.certified += 1
            self._slate = slate
        elif self.exact_fallback:
            self._refresh(profile_vec, location, timestamp)
        else:
            self.stats.served_approximate += 1
            self._slate = slate
        self._profile_epoch = profile_epoch
        return self._slate

    # -- internals ----------------------------------------------------------------

    def _decay_factor(self, timestamp: float) -> float:
        half_life = self.context.half_life_s
        if half_life is None:
            return 1.0
        dt = max(0.0, timestamp - self.context.last_update)
        return 0.5 ** (dt / half_life)

    def _rescore(
        self,
        candidate_ids: set[int],
        profile_vec: SparseVector,
        location: GeoPoint | None,
        timestamp: float,
    ) -> tuple[list[tuple[float, int]], list[ScoredAd]]:
        """Exact content dots and totals for the candidate set.

        Returns (content, ad_id) pairs for shadow selection — kept even for
        ads whose targeting currently rejects the user, since targeting is
        time-varying while the shadow is content-only — and ScoredAds for
        the slate (eligible, relevance-floor-passing ads only).
        """
        corpus = self.scoring.corpus
        contents: list[tuple[float, int]] = []
        totals: list[ScoredAd] = []
        for ad_id in candidate_ids:
            if ad_id not in corpus or not corpus.is_active(ad_id):
                continue
            terms = corpus.get(ad_id).terms
            content = self.context.dot_with(terms)
            contents.append((content, ad_id))
            if content <= 0.0 and dot(profile_vec, terms) <= 0.0:
                continue  # relevance floor
            static = self.scoring.static_score(
                ad_id, profile_vec, location, timestamp
            )
            if static is None:
                continue  # targeting rejected
            totals.append(self.scoring.scored_ad(ad_id, content, static))
        return contents, totals

    def _refresh(
        self,
        profile_vec: SparseVector,
        location: GeoPoint | None,
        timestamp: float,
    ) -> None:
        """Exact rebuild: one boosted probe for the slate, one content probe
        for the shadow."""
        self.stats.refreshes += 1
        raw_context = self.context.raw_vector()
        scoring = self.scoring

        query = scoring.combined_query(raw_context, profile_vec)
        boosted = make_searcher(
            self.searcher,
            self.index,
            static_score=scoring.probe_static_fn(location, timestamp),
            max_static=scoring.max_probe_static,
            filter_fn=scoring.targeting_filter(location, timestamp),
        )
        slate: list[ScoredAd] = []
        for entry in boosted.search(query, self.k):
            terms = self.index.ad_terms(entry.item)
            content = self.context.dot_with(terms)
            slate.append(
                ScoredAd(
                    ad_id=entry.item,
                    score=entry.score,
                    content=content,
                    static=entry.score - scoring.weights.alpha * content,
                )
            )
        self._slate = tuple(slate)

        content_probe = make_searcher(self.searcher, self.index).search(
            raw_context, self.shadow_size
        )
        self._shadow = [entry.item for entry in content_probe]
        if len(content_probe) == self.shadow_size:
            self._cutoff = content_probe[-1].score
        else:
            self._cutoff = 0.0
