"""Dictionary-based concept annotation — the offline DBpedia-Spotlight stand-in.

Production context-aware ad systems link text spans to knowledge-base
concepts ("running shoes" → Concept:Footwear, confidence 0.9). Without
network access we reproduce the *interface* with a gazetteer phrase matcher:
a concept dictionary maps surface phrases (1–3 tokens) to concept names with
prior confidences, and annotation is greedy longest-match over the token
stream. The output shape — a list of (concept, score) pairs — is exactly
what the scoring layer consumes, so swapping a real linker in later is a
one-class change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.text.tokenizer import Tokenizer


@dataclass(frozen=True, slots=True)
class Annotation:
    """One linked concept mention."""

    concept: str
    score: float
    surface: tuple[str, ...]

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ConfigError(f"annotation score must be in [0, 1], got {self.score}")


@dataclass
class ConceptAnnotator:
    """Greedy longest-match phrase linker over tokenised text."""

    tokenizer: Tokenizer = field(default_factory=Tokenizer)
    max_phrase_length: int = 3

    def __post_init__(self) -> None:
        if self.max_phrase_length < 1:
            raise ConfigError(
                f"max_phrase_length must be >= 1, got {self.max_phrase_length}"
            )
        self._phrases: dict[tuple[str, ...], tuple[str, float]] = {}

    def register(self, phrase: str, concept: str, score: float = 1.0) -> None:
        """Add a surface phrase → concept mapping to the gazetteer.

        The phrase is normalised through the same tokenizer used at
        annotation time so that lookups match ("Running Shoes" == "running shoe").
        """
        if not 0.0 <= score <= 1.0:
            raise ConfigError(f"score must be in [0, 1], got {score}")
        tokens = tuple(self.tokenizer.tokenize(phrase))
        if not tokens:
            raise ConfigError(f"phrase tokenises to nothing: {phrase!r}")
        if len(tokens) > self.max_phrase_length:
            raise ConfigError(
                f"phrase longer than max_phrase_length={self.max_phrase_length}: "
                f"{phrase!r}"
            )
        self._phrases[tokens] = (concept, score)

    def register_concepts(self, mapping: dict[str, str]) -> None:
        """Bulk-register {phrase: concept} with score 1.0."""
        for phrase, concept in mapping.items():
            self.register(phrase, concept)

    def __len__(self) -> int:
        return len(self._phrases)

    def annotate(self, text: str) -> list[Annotation]:
        """Link concepts in ``text`` by greedy longest-match, left to right."""
        tokens = self.tokenizer.tokenize(text)
        annotations: list[Annotation] = []
        index = 0
        while index < len(tokens):
            matched = False
            longest = min(self.max_phrase_length, len(tokens) - index)
            for length in range(longest, 0, -1):
                candidate = tuple(tokens[index : index + length])
                entry = self._phrases.get(candidate)
                if entry is not None:
                    concept, score = entry
                    annotations.append(
                        Annotation(concept=concept, score=score, surface=candidate)
                    )
                    index += length
                    matched = True
                    break
            if not matched:
                index += 1
        return annotations

    def concept_vector(self, text: str) -> dict[str, float]:
        """Aggregate annotations into a concept → max-score vector."""
        vector: dict[str, float] = {}
        for annotation in self.annotate(text):
            existing = vector.get(annotation.concept, 0.0)
            vector[annotation.concept] = max(existing, annotation.score)
        return vector
