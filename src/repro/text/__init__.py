"""Text pipeline: tokenisation, stemming, weighting and concept annotation.

This package is the offline stand-in for the text services a production
system would call out to (it replaces DBpedia-Spotlight-style annotation with
a dictionary phrase linker — see DESIGN.md, substitutions table).
"""

from repro.text.annotator import Annotation, ConceptAnnotator
from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import STOPWORDS, is_stopword
from repro.text.tokenizer import Tokenizer, TokenizerConfig
from repro.text.vectorizer import TfidfVectorizer
from repro.text.vocabulary import Vocabulary

__all__ = [
    "Annotation",
    "ConceptAnnotator",
    "PorterStemmer",
    "STOPWORDS",
    "TfidfVectorizer",
    "Tokenizer",
    "TokenizerConfig",
    "Vocabulary",
    "is_stopword",
]
