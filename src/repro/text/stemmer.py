"""Porter stemming algorithm (Porter, 1980), implemented from scratch.

The classic five-step suffix-stripping stemmer. It is deliberately a plain,
dependency-free transcription of the published algorithm; the text pipeline
uses it to conflate inflected forms ("running" → "run") before weighting.
"""

from __future__ import annotations

_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, index: int) -> bool:
    char = word[index]
    if char in _VOWELS:
        return False
    if char == "y":
        if index == 0:
            return True
        return not _is_consonant(word, index - 1)
    return True


def _measure(stem: str) -> int:
    """The Porter 'measure' m: the number of VC sequences in the stem."""
    pattern: list[str] = []
    for index in range(len(stem)):
        kind = "c" if _is_consonant(stem, index) else "v"
        if not pattern or pattern[-1] != kind:
            pattern.append(kind)
    joined = "".join(pattern)
    if joined.startswith("c"):
        joined = joined[1:]
    if joined.endswith("v"):
        joined = joined[:-1]
    # After trimming, `joined` alternates v/c starting with "v" and ending
    # with "c", so the number of VC pairs is exactly half its length.
    return len(joined) // 2


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, index) for index in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    if len(word) < 2:
        return False
    if word[-1] != word[-2]:
        return False
    return _is_consonant(word, len(word) - 1)


def _ends_cvc(word: str) -> bool:
    if len(word) < 3:
        return False
    if not (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
    ):
        return False
    return word[-1] not in "wxy"


class PorterStemmer:
    """Stateless Porter stemmer; ``stem()`` is safe to call concurrently."""

    def stem(self, word: str) -> str:
        """Stem one lower-case alphabetic token; short tokens pass through."""
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    @staticmethod
    def _replace(word: str, suffix: str, replacement: str) -> str:
        return word[: len(word) - len(suffix)] + replacement

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return self._replace(word, "sses", "ss")
        if word.endswith("ies"):
            return self._replace(word, "ies", "i")
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if _measure(stem) > 0:
                return stem + "ee"
            return word
        done = False
        if word.endswith("ed"):
            stem = word[:-2]
            if _contains_vowel(stem):
                word, done = stem, True
        elif word.endswith("ing"):
            stem = word[:-3]
            if _contains_vowel(stem):
                word, done = stem, True
        if done:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if _ends_double_consonant(word) and not word.endswith(("l", "s", "z")):
                return word[:-1]
            if _measure(word) == 1 and _ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and _contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    )

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if _measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP3_SUFFIXES = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if _measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _step4(self, word: str) -> str:
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if _measure(stem) > 1:
                    return stem
                return word
        if word.endswith("ion"):
            stem = word[:-3]
            if stem and stem[-1] in "st" and _measure(stem) > 1:
                return stem
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = _measure(stem)
            if m > 1 or (m == 1 and not _ends_cvc(stem)):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if word.endswith("ll") and _measure(word) > 1:
            return word[:-1]
        return word
