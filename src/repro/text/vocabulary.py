"""Bidirectional term ↔ integer-id mapping.

The topic-model subsystem (and anything that wants dense arrays) works over
integer ids; the rest of the library works over term strings. ``Vocabulary``
is the bridge.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ConfigError


class Vocabulary:
    """Append-only mapping between terms and contiguous integer ids."""

    __slots__ = ("_id_to_term", "_term_to_id")

    def __init__(self, terms: Iterable[str] = ()) -> None:
        self._term_to_id: dict[str, int] = {}
        self._id_to_term: list[str] = []
        for term in terms:
            self.add(term)

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def add(self, term: str) -> int:
        """Register a term (idempotent) and return its id."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        term_id = len(self._id_to_term)
        self._term_to_id[term] = term_id
        self._id_to_term.append(term)
        return term_id

    def add_all(self, terms: Iterable[str]) -> None:
        for term in terms:
            self.add(term)

    def id_of(self, term: str) -> int:
        """Id of a known term; raises ConfigError for unknown terms."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            raise ConfigError(f"term not in vocabulary: {term!r}")
        return term_id

    def get(self, term: str) -> int | None:
        """Id of a term, or None when unknown."""
        return self._term_to_id.get(term)

    def term_of(self, term_id: int) -> str:
        if not 0 <= term_id < len(self._id_to_term):
            raise ConfigError(f"term id {term_id} outside [0, {len(self)})")
        return self._id_to_term[term_id]

    def terms(self) -> list[str]:
        """All terms in id order (a copy)."""
        return list(self._id_to_term)

    def encode(self, tokens: Iterable[str], *, grow: bool = False) -> list[int]:
        """Map tokens to ids, optionally growing the vocabulary.

        With ``grow=False`` unknown tokens are silently dropped, which is the
        behaviour wanted when encoding query text against a trained model.
        """
        ids: list[int] = []
        for token in tokens:
            if grow:
                ids.append(self.add(token))
            else:
                token_id = self._term_to_id.get(token)
                if token_id is not None:
                    ids.append(token_id)
        return ids
