"""Tweet-aware tokenizer.

Short social text needs slightly different handling from clean prose:
URLs and @mentions are noise, #hashtags are strong topical signal (the hash
is stripped, the word kept), and elongations ("soooo") are squeezed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import STOPWORDS

_URL_RE = re.compile(r"https?://\S+|www\.\S+")
_MENTION_RE = re.compile(r"@\w+")
_TOKEN_RE = re.compile(r"[a-z][a-z0-9']*")
# Squeeze letter elongations only ("soooo" → "soo"); digit runs are real
# data (ids, years, the synthetic vocabulary) and must survive intact.
_ELONGATION_RE = re.compile(r"([a-z])\1{2,}")


@dataclass(frozen=True)
class TokenizerConfig:
    """Tokenizer behaviour switches.

    ``min_token_length`` filters single-letter noise; ``stem`` toggles Porter
    stemming; ``keep_stopwords`` is useful for language-model-style consumers.
    """

    min_token_length: int = 2
    stem: bool = True
    keep_stopwords: bool = False

    def __post_init__(self) -> None:
        if self.min_token_length < 1:
            raise ConfigError(
                f"min_token_length must be >= 1, got {self.min_token_length}"
            )


@dataclass
class Tokenizer:
    """Turns raw text into a list of normalised tokens."""

    config: TokenizerConfig = field(default_factory=TokenizerConfig)

    def __post_init__(self) -> None:
        self._stemmer = PorterStemmer()

    def tokenize(self, text: str) -> list[str]:
        """Normalise, split and filter ``text`` into topic-bearing tokens."""
        lowered = text.lower()
        lowered = _URL_RE.sub(" ", lowered)
        lowered = _MENTION_RE.sub(" ", lowered)
        lowered = lowered.replace("#", " ")
        lowered = _ELONGATION_RE.sub(r"\1\1", lowered)
        tokens: list[str] = []
        for match in _TOKEN_RE.finditer(lowered):
            token = match.group(0).strip("'")
            if len(token) < self.config.min_token_length:
                continue
            if not self.config.keep_stopwords and token in STOPWORDS:
                continue
            if self.config.stem:
                token = self._stemmer.stem(token)
            if len(token) >= self.config.min_token_length:
                tokens.append(token)
        return tokens

    def __call__(self, text: str) -> list[str]:
        return self.tokenize(text)
