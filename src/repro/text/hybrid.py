"""Concept-enriched text vectorisation.

Pure bag-of-words misses paraphrase ("sneakers" vs "running shoes"); the
knowledge-base annotation step the original pipeline used (DBpedia
Spotlight there, the offline :class:`~repro.text.annotator.ConceptAnnotator`
here) fixes that by mapping surface phrases onto shared concept ids. The
hybrid vectorizer blends both spaces::

    v(text) = normalize( (1 - w)·tfidf(tokens)  ⊕  w·concepts(text) )

Concept features are prefixed (``c:``) so they can never collide with
vocabulary terms. Ads built through the same instance land in the same
joint space, so two texts sharing only a concept still match.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.text.annotator import ConceptAnnotator
from repro.text.tokenizer import Tokenizer
from repro.text.vectorizer import TfidfVectorizer
from repro.util.sparse import MutableSparseVector, l2_normalize

CONCEPT_PREFIX = "c:"


@dataclass
class HybridVectorizer:
    """TF-IDF terms plus annotator concepts in one unit vector."""

    vectorizer: TfidfVectorizer
    annotator: ConceptAnnotator
    tokenizer: Tokenizer = field(default_factory=Tokenizer)
    concept_weight: float = 0.4

    def __post_init__(self) -> None:
        if not 0.0 <= self.concept_weight <= 1.0:
            raise ConfigError(
                f"concept_weight must be in [0, 1], got {self.concept_weight}"
            )

    def transform_text(self, text: str) -> MutableSparseVector:
        """Raw text → unit vector over the joint term ⊕ concept space."""
        term_vec = self.vectorizer.transform(self.tokenizer.tokenize(text))
        concept_vec = self.annotator.concept_vector(text)
        combined: MutableSparseVector = {}
        term_scale = 1.0 - self.concept_weight
        if term_scale > 0.0:
            for term, weight in term_vec.items():
                combined[term] = term_scale * weight
        if self.concept_weight > 0.0 and concept_vec:
            concept_unit = l2_normalize(concept_vec)
            for concept, weight in concept_unit.items():
                key = CONCEPT_PREFIX + concept
                combined[key] = combined.get(key, 0.0) + self.concept_weight * weight
        return l2_normalize(combined)

    # Engine compatibility: the engine calls ``transform(tokens)`` on its
    # vectorizer; a hybrid instance is instead plugged in via
    # ``AdEngine(text_vectorizer=hybrid.transform_text)``.

    def __call__(self, text: str) -> MutableSparseVector:
        return self.transform_text(text)
