"""TF-IDF weighting for short social text.

``TfidfVectorizer`` is fitted once over a training corpus (document
frequencies), then turns any token list into a unit-L2 sparse vector. For
tweets, raw term frequency is nearly always 1, so the "tf" component uses
``1 + log(tf)`` damping which degrades gracefully for longer ad copy.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.errors import ConfigError
from repro.util.sparse import MutableSparseVector, l2_normalize


class TfidfVectorizer:
    """Document-frequency-weighted bag-of-words vectorizer.

    IDF uses the smoothed form ``log((1 + N) / (1 + df)) + 1`` so that terms
    never get a non-positive weight and unseen terms (df = 0) get the maximum.
    """

    def __init__(self, *, min_df: int = 1) -> None:
        if min_df < 1:
            raise ConfigError(f"min_df must be >= 1, got {min_df}")
        self.min_df = min_df
        self._df: dict[str, int] = {}
        self._num_docs = 0

    @property
    def num_docs(self) -> int:
        return self._num_docs

    @property
    def is_fitted(self) -> bool:
        return self._num_docs > 0

    def fit(self, documents: Iterable[Sequence[str]]) -> "TfidfVectorizer":
        """Learn document frequencies from tokenised documents."""
        for tokens in documents:
            self._num_docs += 1
            for term in set(tokens):
                self._df[term] = self._df.get(term, 0) + 1
        return self

    def partial_fit(self, tokens: Sequence[str]) -> None:
        """Fold one more document into the statistics (streaming fit)."""
        self._num_docs += 1
        for term in set(tokens):
            self._df[term] = self._df.get(term, 0) + 1

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency of a term."""
        df = self._df.get(term, 0)
        if df < self.min_df:
            df = 0
        return math.log((1 + self._num_docs) / (1 + df)) + 1.0

    def document_frequency(self, term: str) -> int:
        return self._df.get(term, 0)

    def transform(self, tokens: Sequence[str]) -> MutableSparseVector:
        """Tokens → unit-L2 sparse TF-IDF vector (empty input → empty dict)."""
        if not tokens:
            return {}
        counts: dict[str, int] = {}
        for term in tokens:
            counts[term] = counts.get(term, 0) + 1
        weighted = {
            term: (1.0 + math.log(count)) * self.idf(term)
            for term, count in counts.items()
        }
        return l2_normalize(weighted)

    def fit_transform(
        self, documents: Sequence[Sequence[str]]
    ) -> list[MutableSparseVector]:
        """Fit on ``documents`` then transform each of them."""
        self.fit(documents)
        return [self.transform(tokens) for tokens in documents]
