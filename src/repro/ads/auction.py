"""Generalised second-price (GSP) charging for a ranked ad slate.

The engine ranks ads by relevance-weighted score; given that ranking, each
winner pays the bid of the ad one slot below it (capped by its own bid and
floored by the reserve price). The last slot pays the reserve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ads.corpus import AdCorpus
from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class AuctionOutcome:
    """Prices charged for one slate, position-aligned with the input."""

    ad_ids: tuple[int, ...]
    prices: tuple[float, ...]

    @property
    def revenue(self) -> float:
        return sum(self.prices)


def run_gsp_auction(
    corpus: AdCorpus,
    ranked_ad_ids: list[int],
    *,
    reserve_price: float = 0.0,
) -> AuctionOutcome:
    """Price a ranked slate with generalised second-price rules.

    ``ranked_ad_ids`` must already be in slate order (best first); this
    function only prices, it never re-ranks — ranking is the engine's job
    and mixes relevance with bids.
    """
    if reserve_price < 0.0:
        raise ConfigError(f"reserve_price must be >= 0, got {reserve_price}")
    bids = [corpus.get(ad_id).bid for ad_id in ranked_ad_ids]
    prices: list[float] = []
    for position, bid in enumerate(bids):
        next_bid = bids[position + 1] if position + 1 < len(bids) else reserve_price
        price = max(reserve_price, min(bid, next_bid))
        prices.append(price)
    return AuctionOutcome(ad_ids=tuple(ranked_ad_ids), prices=tuple(prices))
