"""Budget accounting and spend pacing.

Each ad with a finite budget gets a :class:`BudgetState` tracking spend over
its campaign window. Pacing throttles ads that are spending faster than a
uniform schedule would: the multiplier scales the ad's bid term in the
ranking score, so over-delivering ads sink in the slate rather than being
cut off abruptly (the classic "budget smoothing" behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ads.corpus import AdCorpus
from repro.errors import BudgetError, ConfigError


@dataclass
class BudgetState:
    """Spend bookkeeping for one ad's campaign."""

    budget: float
    campaign_start: float
    campaign_end: float
    spent: float = 0.0

    def __post_init__(self) -> None:
        if self.budget <= 0.0:
            raise ConfigError(f"budget must be positive, got {self.budget}")
        if self.campaign_end <= self.campaign_start:
            raise ConfigError("campaign_end must be after campaign_start")
        if self.spent < 0.0:
            raise ConfigError(f"spent cannot be negative, got {self.spent}")

    @property
    def remaining(self) -> float:
        return max(0.0, self.budget - self.spent)

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0.0

    def time_fraction(self, timestamp: float) -> float:
        """Fraction of the campaign window elapsed at ``timestamp``, clamped."""
        span = self.campaign_end - self.campaign_start
        fraction = (timestamp - self.campaign_start) / span
        return min(1.0, max(0.0, fraction))

    def spend_fraction(self) -> float:
        return min(1.0, self.spent / self.budget)

    def pacing_multiplier(self, timestamp: float) -> float:
        """Throttle factor in (0, 1].

        1.0 while on/behind the uniform spend schedule; otherwise the ratio
        of scheduled spend to actual spend, floored so an early burst cannot
        zero an ad out forever.
        """
        if self.exhausted:
            return 0.0
        expected = self.budget * self.time_fraction(timestamp)
        if self.spent <= expected or self.spent == 0.0:
            return 1.0
        return max(0.1, expected / self.spent)


class BudgetManager:
    """Tracks budgets for all capped ads and retires exhausted ones."""

    def __init__(
        self,
        corpus: AdCorpus,
        *,
        campaign_start: float = 0.0,
        campaign_end: float = 86_400.0,
        pacing_enabled: bool = True,
    ) -> None:
        if campaign_end <= campaign_start:
            raise ConfigError("campaign_end must be after campaign_start")
        self._corpus = corpus
        self._pacing_enabled = pacing_enabled
        self._states: dict[int, BudgetState] = {}
        # Ads with any spend: the only ads whose pacing multiplier can
        # differ from 1.0 — lets the vectorized block path skip the
        # per-ad schedule math entirely until charging starts.
        self._spenders: set[int] = set()
        for ad in corpus.all_ads():
            if ad.budget is not None:
                self._states[ad.ad_id] = BudgetState(
                    budget=ad.budget,
                    campaign_start=campaign_start,
                    campaign_end=campaign_end,
                )
        corpus.subscribe(
            on_add=lambda ad: self._register(ad, campaign_start, campaign_end)
        )

    def _register(self, ad, campaign_start: float, campaign_end: float) -> None:
        if ad.budget is not None and ad.ad_id not in self._states:
            self._states[ad.ad_id] = BudgetState(
                budget=ad.budget,
                campaign_start=campaign_start,
                campaign_end=campaign_end,
            )

    def state(self, ad_id: int) -> BudgetState | None:
        """Budget state, or None for uncapped ads."""
        return self._states.get(ad_id)

    def pacing_multiplier(self, ad_id: int, timestamp: float) -> float:
        """Bid-term multiplier; 1.0 for uncapped ads or with pacing off."""
        state = self._states.get(ad_id)
        if state is None:
            return 1.0
        if not self._pacing_enabled:
            return 0.0 if state.exhausted else 1.0
        return state.pacing_multiplier(timestamp)

    def pacing_block(self, ad_ids, timestamp: float):
        """Per-ad pacing multipliers for a candidate block.

        An ad's multiplier can only deviate from 1.0 once it has spent
        (both the schedule throttle and the exhaustion zero require spend
        > 0), so only ads in the spender set are evaluated individually.
        ``ad_ids`` is any integer sequence; returns a float64 array.
        """
        multipliers = np.ones(len(ad_ids), dtype=np.float64)
        spenders = self._spenders
        if spenders:
            for i, ad_id in enumerate(ad_ids):
                ad_id = int(ad_id)
                if ad_id in spenders:
                    multipliers[i] = self.pacing_multiplier(ad_id, timestamp)
        return multipliers

    def charge(self, ad_id: int, price: float) -> bool:
        """Debit one impression; returns True if the ad just exhausted.

        The final impression may be charged at less than ``price`` (the
        remaining balance) — advertisers are never billed past their cap.
        Exhausted ads are retired from the corpus, which cascades to every
        subscribed index.
        """
        if price < 0.0:
            raise BudgetError(f"price cannot be negative: {price}")
        state = self._states.get(ad_id)
        if state is None:
            return False
        if state.exhausted:
            raise BudgetError(f"ad {ad_id} is already exhausted")
        state.spent += min(price, state.remaining)
        if state.spent > 0.0:
            self._spenders.add(ad_id)
        if state.exhausted:
            self._corpus.retire(ad_id)
            return True
        return False

    def restore_spend(self, ad_id: int, spent: float) -> None:
        """Set an ad's spend directly (checkpoint restore), keeping the
        spender fast-path set consistent."""
        state = self._states.get(ad_id)
        if state is None:
            raise BudgetError(f"ad {ad_id} has no budget to restore into")
        state.spent = spent
        if spent > 0.0:
            self._spenders.add(ad_id)
        else:
            self._spenders.discard(ad_id)

    def total_spend(self) -> float:
        return sum(state.spent for state in self._states.values())

    def exhausted_ids(self) -> list[int]:
        return sorted(
            ad_id for ad_id, state in self._states.items() if state.exhausted
        )
