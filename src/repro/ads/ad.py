"""The advertisement model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.ads.targeting import TargetingSpec
from repro.util.sparse import l2_normalize


@dataclass
class Ad:
    """One advertisement: creative text, term vector, bid and targeting.

    ``terms`` is the unit-L2 term-weight vector the matching engine scores
    against; it is normalised at construction so that content scores are
    cosines. ``budget`` is the total spend cap in the same currency as
    ``bid`` (None means uncapped).
    """

    ad_id: int
    advertiser: str
    text: str
    terms: dict[str, float]
    bid: float
    budget: float | None = None
    targeting: TargetingSpec = field(default_factory=TargetingSpec)

    def __post_init__(self) -> None:
        if self.ad_id < 0:
            raise ConfigError(f"ad_id must be non-negative, got {self.ad_id}")
        if self.bid <= 0.0:
            raise ConfigError(f"bid must be positive, got {self.bid}")
        if self.budget is not None and self.budget <= 0.0:
            raise ConfigError(f"budget must be positive or None, got {self.budget}")
        if not self.terms:
            raise ConfigError(f"ad {self.ad_id} has an empty term vector")
        if any(weight <= 0.0 for weight in self.terms.values()):
            raise ConfigError(f"ad {self.ad_id} has non-positive term weights")
        self.terms = l2_normalize(self.terms)

    @property
    def keywords(self) -> list[str]:
        """The ad's terms, heaviest first (deterministic order)."""
        return [
            term
            for term, _ in sorted(self.terms.items(), key=lambda kv: (-kv[1], kv[0]))
        ]
