"""The ad corpus: ownership of all ads and their active/retired state.

Downstream structures (inverted index, spatial filter, budget manager)
subscribe to corpus mutations through listener callbacks so they never go
stale — retiring an exhausted ad atomically removes it everywhere.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from repro.ads.ad import Ad
from repro.errors import CorpusError, UnknownAdError

AdListener = Callable[[Ad], None]


class AdCorpus:
    """Mutable collection of ads keyed by ad id."""

    def __init__(self, ads: Iterable[Ad] = ()) -> None:
        self._ads: dict[int, Ad] = {}
        self._retired: set[int] = set()
        self._max_bid = 0.0
        self._add_epoch = 0
        self._on_add: list[AdListener] = []
        self._on_retire: list[AdListener] = []
        for ad in ads:
            self.add(ad)

    @property
    def add_epoch(self) -> int:
        """Bumped whenever an ad is *added*. Caches of "top ads by X" stay
        valid across retirements (scores only leave) but not across adds."""
        return self._add_epoch

    # -- listeners -------------------------------------------------------

    def subscribe(
        self,
        *,
        on_add: AdListener | None = None,
        on_retire: AdListener | None = None,
    ) -> None:
        """Register callbacks fired after an ad is added / retired."""
        if on_add is not None:
            self._on_add.append(on_add)
        if on_retire is not None:
            self._on_retire.append(on_retire)

    # -- membership --------------------------------------------------------

    def add(self, ad: Ad) -> None:
        """Insert a new active ad; duplicate ids are an error."""
        if ad.ad_id in self._ads:
            raise CorpusError(f"duplicate ad id: {ad.ad_id}")
        self._ads[ad.ad_id] = ad
        self._max_bid = max(self._max_bid, ad.bid)
        self._add_epoch += 1
        for listener in self._on_add:
            listener(ad)

    def get(self, ad_id: int) -> Ad:
        ad = self._ads.get(ad_id)
        if ad is None:
            raise UnknownAdError(ad_id)
        return ad

    def __contains__(self, ad_id: int) -> bool:
        return ad_id in self._ads

    def __len__(self) -> int:
        """Total number of ads ever added (active + retired)."""
        return len(self._ads)

    @property
    def num_active(self) -> int:
        return len(self._ads) - len(self._retired)

    def is_active(self, ad_id: int) -> bool:
        if ad_id not in self._ads:
            raise UnknownAdError(ad_id)
        return ad_id not in self._retired

    def retire(self, ad_id: int) -> None:
        """Deactivate an ad (budget exhausted or campaign ended).

        Retiring is idempotent-unsafe on purpose: retiring twice indicates a
        bookkeeping bug upstream, so it raises.
        """
        ad = self.get(ad_id)
        if ad_id in self._retired:
            raise CorpusError(f"ad {ad_id} already retired")
        self._retired.add(ad_id)
        for listener in self._on_retire:
            listener(ad)

    # -- iteration -----------------------------------------------------------

    def active_ads(self) -> Iterator[Ad]:
        """All active ads, ascending id (deterministic)."""
        for ad_id in sorted(self._ads):
            if ad_id not in self._retired:
                yield self._ads[ad_id]

    def all_ads(self) -> Iterator[Ad]:
        for ad_id in sorted(self._ads):
            yield self._ads[ad_id]

    def active_ids(self) -> list[int]:
        return [ad.ad_id for ad in self.active_ads()]

    # -- aggregates ----------------------------------------------------------

    @property
    def max_bid(self) -> float:
        """Largest bid ever added; used to normalise the bid score term.

        Kept monotone on purpose: normalising by a high-water mark keeps
        scores stable when the top bidder's budget runs out mid-stream.
        """
        return self._max_bid

    def normalized_bid(self, ad_id: int) -> float:
        """bid / max_bid in (0, 1]; 0.0 when the corpus is empty."""
        ad = self.get(ad_id)
        if self._max_bid <= 0.0:
            return 0.0
        return ad.bid / self._max_bid
