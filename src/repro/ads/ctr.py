"""Click-through-rate estimation with Bayesian smoothing.

Real ad rankers multiply the bid by a *quality score* — an estimate of the
ad's click probability — so that expensive-but-ignored ads do not dominate
slates. This module provides the estimator: a Beta-Bernoulli posterior per
ad with a shared prior, plus an optional exponential discount so stale
clicks fade.

The engine consumes it through :class:`~repro.core.scoring.ScoringModel`:
with an estimator attached, the bid term becomes
``bid_norm · pacing · quality/2`` where ``quality = min(2, ctr/prior)`` —
so the term stays in [0, 1] (the pruning bounds remain admissible), proven
clickers can double their effective bid and duds fade toward zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

QUALITY_CAP = 2.0


@dataclass
class _AdClickStats:
    impressions: float = 0.0
    clicks: float = 0.0


class CtrEstimator:
    """Per-ad smoothed CTR with a shared Beta prior.

    ``prior_ctr`` and ``prior_strength`` define a Beta(a, b) prior with
    mean ``prior_ctr`` and pseudo-count ``prior_strength``; each ad's
    estimate is the posterior mean given its own (optionally discounted)
    impression/click counts. Clicks are reported separately from
    impressions (a click event always follows an impression event for the
    same ad).
    """

    def __init__(
        self,
        *,
        prior_ctr: float = 0.05,
        prior_strength: float = 20.0,
        discount: float = 1.0,
    ) -> None:
        if not 0.0 < prior_ctr < 1.0:
            raise ConfigError(f"prior_ctr must be in (0, 1), got {prior_ctr}")
        if prior_strength <= 0.0:
            raise ConfigError(
                f"prior_strength must be positive, got {prior_strength}"
            )
        if not 0.0 < discount <= 1.0:
            raise ConfigError(f"discount must be in (0, 1], got {discount}")
        self.prior_ctr = prior_ctr
        self.prior_strength = prior_strength
        self.discount = discount
        self._stats: dict[int, _AdClickStats] = {}
        self._total_impressions = 0.0
        self._total_clicks = 0.0

    # -- observation ----------------------------------------------------

    def _stats_for(self, ad_id: int) -> _AdClickStats:
        stats = self._stats.get(ad_id)
        if stats is None:
            stats = _AdClickStats()
            self._stats[ad_id] = stats
        return stats

    def record_impression(self, ad_id: int) -> None:
        """Fold one served impression into the posterior."""
        stats = self._stats_for(ad_id)
        if self.discount < 1.0:
            stats.impressions *= self.discount
            stats.clicks *= self.discount
        stats.impressions += 1.0
        self._total_impressions += 1.0

    def record_click(self, ad_id: int) -> None:
        """Fold one click on a previously-served impression."""
        stats = self._stats_for(ad_id)
        stats.clicks += 1.0
        self._total_clicks += 1.0

    # -- estimates --------------------------------------------------------

    def impressions_of(self, ad_id: int) -> float:
        stats = self._stats.get(ad_id)
        return stats.impressions if stats else 0.0

    def clicks_of(self, ad_id: int) -> float:
        stats = self._stats.get(ad_id)
        return stats.clicks if stats else 0.0

    def estimate(self, ad_id: int) -> float:
        """Posterior-mean CTR for an ad (the prior mean when unseen)."""
        alpha = self.prior_ctr * self.prior_strength
        beta = (1.0 - self.prior_ctr) * self.prior_strength
        stats = self._stats.get(ad_id)
        if stats is None:
            return alpha / (alpha + beta)
        return (alpha + stats.clicks) / (alpha + beta + stats.impressions)

    def global_ctr(self) -> float:
        """Observed corpus-wide CTR (prior mean with no traffic)."""
        if self._total_impressions == 0.0:
            return self.prior_ctr
        return self._total_clicks / self._total_impressions

    def quality_multiplier(self, ad_id: int) -> float:
        """``estimate / prior_ctr`` capped to [0, QUALITY_CAP].

        1.0 for unknown ads (no evidence, no penalty); the cap keeps a
        lucky early click streak from dominating the bid term, mirroring
        the bounded quality scores production auctions use.
        """
        return min(QUALITY_CAP, self.estimate(ad_id) / self.prior_ctr)

    def observed_ads(self) -> list[int]:
        return sorted(self._stats)
