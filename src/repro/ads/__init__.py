"""Advertisement substrate: ad model, corpus, targeting, budgets, auction."""

from repro.ads.ad import Ad
from repro.ads.auction import AuctionOutcome, run_gsp_auction
from repro.ads.budget import BudgetManager, BudgetState
from repro.ads.corpus import AdCorpus
from repro.ads.targeting import TargetingSpec, TimeWindow

__all__ = [
    "Ad",
    "AdCorpus",
    "AuctionOutcome",
    "BudgetManager",
    "BudgetState",
    "TargetingSpec",
    "TimeWindow",
    "run_gsp_auction",
]
