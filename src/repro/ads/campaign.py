"""Advertiser-facing campaign management.

An advertiser thinks in *campaigns* — a flight window, a total budget and
several creatives — not in the engine's per-ad terms. The
:class:`CampaignManager` maps between the two worlds:

* ``register`` validates a :class:`CampaignSpec` and allocates ad ids for
  its creatives (budget split evenly across them);
* ``process_until(t)`` is called as simulated time advances: campaigns
  whose flight has opened are launched into the engine, campaigns whose
  flight has closed are ended (creatives retired);
* ``status`` aggregates per-creative spend and delivery state back to the
  campaign level for reporting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ads.ad import Ad
from repro.ads.targeting import TargetingSpec
from repro.core.engine import AdEngine
from repro.errors import ConfigError
from repro.text.tokenizer import Tokenizer


@dataclass(frozen=True)
class CampaignSpec:
    """What an advertiser submits."""

    campaign_id: str
    advertiser: str
    creatives: tuple[str, ...]  # creative texts
    bid: float
    total_budget: float | None
    flight_start: float
    flight_end: float
    targeting: TargetingSpec = field(default_factory=TargetingSpec)

    def __post_init__(self) -> None:
        if not self.campaign_id:
            raise ConfigError("campaign_id cannot be empty")
        if not self.creatives:
            raise ConfigError("a campaign needs at least one creative")
        if self.bid <= 0.0:
            raise ConfigError(f"bid must be positive, got {self.bid}")
        if self.total_budget is not None and self.total_budget <= 0.0:
            raise ConfigError(
                f"total_budget must be positive or None, got {self.total_budget}"
            )
        if self.flight_end <= self.flight_start:
            raise ConfigError("flight_end must be after flight_start")


class CampaignPhase(enum.Enum):
    SCHEDULED = "scheduled"
    LIVE = "live"
    ENDED = "ended"


@dataclass(frozen=True, slots=True)
class CampaignStatus:
    """Aggregated campaign state for advertiser reporting."""

    campaign_id: str
    phase: CampaignPhase
    creative_ad_ids: tuple[int, ...]
    active_creatives: int
    spent: float
    remaining: float | None


@dataclass
class _Tracked:
    spec: CampaignSpec
    ads: list[Ad]
    phase: CampaignPhase = CampaignPhase.SCHEDULED


class CampaignManager:
    """Flight scheduling and reporting over one engine."""

    def __init__(self, engine: AdEngine, *, tokenizer: Tokenizer | None = None) -> None:
        self._engine = engine
        self._tokenizer = tokenizer or engine.tokenizer
        self._campaigns: dict[str, _Tracked] = {}
        existing = [ad.ad_id for ad in engine.corpus.all_ads()]
        self._next_ad_id = max(existing, default=-1) + 1

    def __len__(self) -> int:
        return len(self._campaigns)

    # -- registration --------------------------------------------------------

    def register(self, spec: CampaignSpec) -> list[int]:
        """Validate, build per-creative ads, return the allocated ad ids.

        Nothing enters the engine until the flight opens (``process_until``).
        """
        if spec.campaign_id in self._campaigns:
            raise ConfigError(f"duplicate campaign id: {spec.campaign_id!r}")
        per_creative_budget = (
            spec.total_budget / len(spec.creatives)
            if spec.total_budget is not None
            else None
        )
        ads: list[Ad] = []
        for text in spec.creatives:
            terms = self._engine.vectorize(text)
            if not terms:
                raise ConfigError(f"creative tokenises to nothing: {text!r}")
            ads.append(
                Ad(
                    ad_id=self._next_ad_id,
                    advertiser=spec.advertiser,
                    text=text,
                    terms=terms,
                    bid=spec.bid,
                    budget=per_creative_budget,
                    targeting=spec.targeting,
                )
            )
            self._next_ad_id += 1
        self._campaigns[spec.campaign_id] = _Tracked(spec=spec, ads=ads)
        return [ad.ad_id for ad in ads]

    # -- lifecycle -----------------------------------------------------------

    def process_until(self, timestamp: float) -> list[str]:
        """Open/close flights up to ``timestamp``; returns affected ids.

        Call this before each batch of posts (the stream drivers do); it is
        idempotent for a given time.
        """
        affected: list[str] = []
        for campaign_id, tracked in self._campaigns.items():
            spec = tracked.spec
            if (
                tracked.phase is CampaignPhase.SCHEDULED
                and timestamp >= spec.flight_start
            ):
                launch_time = max(spec.flight_start, 0.0)
                for ad in tracked.ads:
                    self._engine.launch_campaign(ad, launch_time)
                tracked.phase = CampaignPhase.LIVE
                affected.append(campaign_id)
            if tracked.phase is CampaignPhase.LIVE and timestamp >= spec.flight_end:
                for ad in tracked.ads:
                    self._engine.end_campaign(ad.ad_id, spec.flight_end)
                tracked.phase = CampaignPhase.ENDED
                affected.append(campaign_id)
        return affected

    # -- reporting ----------------------------------------------------------------

    def status(self, campaign_id: str) -> CampaignStatus:
        tracked = self._campaigns.get(campaign_id)
        if tracked is None:
            raise ConfigError(f"unknown campaign: {campaign_id!r}")
        spent = 0.0
        active = 0
        for ad in tracked.ads:
            state = self._engine.budget.state(ad.ad_id)
            if state is not None:
                spent += state.spent
            if (
                tracked.phase is CampaignPhase.LIVE
                and ad.ad_id in self._engine.corpus
                and self._engine.corpus.is_active(ad.ad_id)
            ):
                active += 1
        remaining = (
            None
            if tracked.spec.total_budget is None
            else max(0.0, tracked.spec.total_budget - spent)
        )
        return CampaignStatus(
            campaign_id=campaign_id,
            phase=tracked.phase,
            creative_ad_ids=tuple(ad.ad_id for ad in tracked.ads),
            active_creatives=active,
            spent=spent,
            remaining=remaining,
        )

    def live_campaigns(self) -> list[str]:
        return sorted(
            campaign_id
            for campaign_id, tracked in self._campaigns.items()
            if tracked.phase is CampaignPhase.LIVE
        )
