"""Ad targeting predicates: where and when an ad may be shown.

A :class:`TargetingSpec` is a conjunction of an optional geographic
constraint (a set of circles; the user must be inside at least one) and an
optional time-of-day constraint (a set of windows; the delivery time must
fall inside at least one). An empty spec matches everything — untargeted
ads are the common case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.geo.point import GeoPoint

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True, slots=True)
class TimeWindow:
    """A daily [start_hour, end_hour) window; may wrap past midnight."""

    start_hour: float
    end_hour: float

    def __post_init__(self) -> None:
        for value, name in ((self.start_hour, "start_hour"), (self.end_hour, "end_hour")):
            if not 0.0 <= value < 24.0:
                raise ConfigError(f"{name} must be in [0, 24), got {value}")
        if self.start_hour == self.end_hour:
            raise ConfigError("empty time window (start == end)")

    def contains(self, timestamp: float) -> bool:
        """Whether the timestamp's hour-of-day falls inside the window."""
        hour = (timestamp % SECONDS_PER_DAY) / 3600.0
        if self.start_hour < self.end_hour:
            return self.start_hour <= hour < self.end_hour
        # Wrapping window, e.g. 22:00 – 06:00.
        return hour >= self.start_hour or hour < self.end_hour


@dataclass(frozen=True)
class TargetingSpec:
    """Conjunction of geo circles (disjunction inside) and time windows."""

    circles: tuple[tuple[GeoPoint, float], ...] = ()
    time_windows: tuple[TimeWindow, ...] = field(default=())

    def __post_init__(self) -> None:
        for _, radius_km in self.circles:
            if radius_km <= 0.0:
                raise ConfigError(f"targeting radius must be positive, got {radius_km}")

    @property
    def is_geo_targeted(self) -> bool:
        return bool(self.circles)

    @property
    def is_time_targeted(self) -> bool:
        return bool(self.time_windows)

    @property
    def is_untargeted(self) -> bool:
        return not self.circles and not self.time_windows

    def max_radius_km(self) -> float:
        """Largest circle radius; 0.0 when not geo targeted."""
        return max((radius for _, radius in self.circles), default=0.0)

    def matches_location(self, location: GeoPoint | None) -> bool:
        """Geo predicate. A user with unknown location only matches
        untargeted ads — the conservative choice for paid delivery."""
        if not self.circles:
            return True
        if location is None:
            return False
        return any(
            center.distance_km(location) <= radius
            for center, radius in self.circles
        )

    def matches_time(self, timestamp: float) -> bool:
        if not self.time_windows:
            return True
        return any(window.contains(timestamp) for window in self.time_windows)

    def matches(self, location: GeoPoint | None, timestamp: float) -> bool:
        """Full predicate: both constraints must pass."""
        return self.matches_location(location) and self.matches_time(timestamp)

    def proximity(self, location: GeoPoint | None) -> float:
        """Soft geo score in [0, 1]: 1 at a circle centre, linear to 0 at its
        edge, best circle wins. Untargeted ads score a neutral 1.0 so they
        are not penalised against targeted ones."""
        if not self.circles:
            return 1.0
        if location is None:
            return 0.0
        best = 0.0
        for center, radius in self.circles:
            distance = center.distance_km(location)
            if distance <= radius:
                best = max(best, 1.0 - distance / radius)
        return best
