"""Geographic points and great-circle distance."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

EARTH_RADIUS_KM = 6371.0088  # mean Earth radius


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A WGS-84 latitude/longitude pair in degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ConfigError(f"latitude out of range [-90, 90]: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ConfigError(f"longitude out of range [-180, 180]: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to another point in kilometres."""
        return haversine_km(self, other)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Haversine great-circle distance between two points, in km."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    sin_dlat = math.sin(dlat / 2.0)
    sin_dlon = math.sin(dlon / 2.0)
    h = sin_dlat * sin_dlat + math.cos(lat1) * math.cos(lat2) * sin_dlon * sin_dlon
    # Clamp for floating-point safety before asin.
    h = min(1.0, max(0.0, h))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))
