"""Geospatial substrate: points, distances, named regions, grid index."""

from repro.geo.grid import GridIndex
from repro.geo.point import EARTH_RADIUS_KM, GeoPoint, haversine_km
from repro.geo.regions import CITIES, City, nearest_city

__all__ = [
    "CITIES",
    "City",
    "EARTH_RADIUS_KM",
    "GeoPoint",
    "GridIndex",
    "haversine_km",
    "nearest_city",
]
