"""A uniform lat/lon grid index for radius queries over point sets.

The ad engine uses this as a spatial pre-filter: given a user location, find
every geo-targeted ad whose target circle could contain the user without
scanning the whole corpus. Cells are fixed-size in degrees; a radius query
scans only the cells overlapping the query circle's bounding box and then
verifies candidates with the exact haversine distance.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from repro.errors import ConfigError
from repro.geo.point import GeoPoint, haversine_km

_KM_PER_DEGREE_LAT = 111.32


class GridIndex:
    """Maps integer item ids to points and answers radius queries."""

    def __init__(self, cell_degrees: float = 1.0) -> None:
        if cell_degrees <= 0.0:
            raise ConfigError(f"cell_degrees must be positive, got {cell_degrees}")
        self.cell_degrees = cell_degrees
        self._cells: dict[tuple[int, int], dict[int, GeoPoint]] = {}
        self._items: dict[int, GeoPoint] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: int) -> bool:
        return item in self._items

    def _cell_of(self, point: GeoPoint) -> tuple[int, int]:
        return (
            int(math.floor(point.lat / self.cell_degrees)),
            int(math.floor(point.lon / self.cell_degrees)),
        )

    def insert(self, item: int, point: GeoPoint) -> None:
        """Add or move an item; re-inserting replaces its location."""
        if item in self._items:
            self.remove(item)
        self._items[item] = point
        self._cells.setdefault(self._cell_of(point), {})[item] = point

    def remove(self, item: int) -> None:
        """Remove an item; unknown items raise ConfigError."""
        point = self._items.pop(item, None)
        if point is None:
            raise ConfigError(f"item {item} not in grid index")
        cell = self._cell_of(point)
        bucket = self._cells[cell]
        del bucket[item]
        if not bucket:
            del self._cells[cell]

    def location_of(self, item: int) -> GeoPoint:
        point = self._items.get(item)
        if point is None:
            raise ConfigError(f"item {item} not in grid index")
        return point

    def within_radius(self, center: GeoPoint, radius_km: float) -> Iterator[int]:
        """Yield item ids whose point lies within ``radius_km`` of ``center``."""
        if radius_km < 0.0:
            raise ConfigError(f"radius_km must be >= 0, got {radius_km}")
        lat_pad = radius_km / _KM_PER_DEGREE_LAT
        cos_lat = math.cos(math.radians(center.lat))
        # Near the poles a longitude degree shrinks to nothing; fall back to
        # scanning all longitudes rather than dividing by ~0.
        if cos_lat < 1e-6:
            lon_pad = 180.0
        else:
            lon_pad = radius_km / (_KM_PER_DEGREE_LAT * cos_lat)
        lat_lo = int(math.floor((center.lat - lat_pad) / self.cell_degrees))
        lat_hi = int(math.floor((center.lat + lat_pad) / self.cell_degrees))
        lon_lo = int(math.floor((center.lon - lon_pad) / self.cell_degrees))
        lon_hi = int(math.floor((center.lon + lon_pad) / self.cell_degrees))
        for cell_lat in range(lat_lo, lat_hi + 1):
            for cell_lon in range(lon_lo, lon_hi + 1):
                bucket = self._cells.get((cell_lat, cell_lon))
                if not bucket:
                    continue
                for item, point in bucket.items():
                    if haversine_km(center, point) <= radius_km:
                        yield item

    def items(self) -> Iterator[tuple[int, GeoPoint]]:
        """All (item, point) pairs in insertion-independent dict order."""
        return iter(self._items.items())
