"""Named regions (cities) used by the synthetic workload generator.

A fixed catalogue of world cities gives the generator realistic geographic
clustering: users live near a city centre with Gaussian scatter, and geo
targeted ads target a city with a radius.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.geo.point import GeoPoint


@dataclass(frozen=True, slots=True)
class City:
    """A named population centre."""

    name: str
    center: GeoPoint
    population_weight: float

    def __post_init__(self) -> None:
        if self.population_weight <= 0.0:
            raise ConfigError(
                f"population_weight must be positive, got {self.population_weight}"
            )


CITIES: tuple[City, ...] = (
    City("new_york", GeoPoint(40.7128, -74.0060), 8.4),
    City("london", GeoPoint(51.5074, -0.1278), 8.9),
    City("tokyo", GeoPoint(35.6762, 139.6503), 13.9),
    City("singapore", GeoPoint(1.3521, 103.8198), 5.7),
    City("sydney", GeoPoint(-33.8688, 151.2093), 5.3),
    City("sao_paulo", GeoPoint(-23.5505, -46.6333), 12.3),
    City("mumbai", GeoPoint(19.0760, 72.8777), 12.4),
    City("lagos", GeoPoint(6.5244, 3.3792), 14.8),
    City("paris", GeoPoint(48.8566, 2.3522), 2.1),
    City("san_francisco", GeoPoint(37.7749, -122.4194), 0.9),
    City("berlin", GeoPoint(52.5200, 13.4050), 3.6),
    City("toronto", GeoPoint(43.6532, -79.3832), 2.9),
)

_CITY_BY_NAME = {city.name: city for city in CITIES}


def city_by_name(name: str) -> City:
    """Look up a catalogue city by name."""
    city = _CITY_BY_NAME.get(name)
    if city is None:
        raise ConfigError(f"unknown city: {name!r}")
    return city


def nearest_city(point: GeoPoint) -> City:
    """The catalogue city whose centre is closest to ``point``."""
    return min(CITIES, key=lambda city: city.center.distance_km(point))
