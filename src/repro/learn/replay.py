"""Unbiased off-policy replay evaluation for the LinUCB rerank policy.

Implements the replay estimator of Li, Chu, Langford & Schapire: log a
stream of (context, uniformly-random arm, observed reward) events once,
then evaluate any candidate policy by walking the log — an event *matches*
when the policy would have picked the logged arm; only matched events
contribute reward and count toward the policy's CTR, and the policy's
online update runs only on matched events. Because the logging policy is
uniform over the pool, the matched subsample is an unbiased draw of the
candidate policy's own on-policy stream.

The logged stream is built from the synthetic workload's generative ground
truth: each event delivers one post to one follower, the arm pool mixes
content-matched and random ads, and the logged reward is a seeded
Bernoulli draw of the examination-model click probability at the graded
relevance. Everything is seeded and deterministic — two builds of the same
stream, and two replays of the same policy, are byte-identical (asserted
by the determinism regression test and relied on by the T8 CI gate).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.ads.ctr import CtrEstimator
from repro.learn.linucb import ArmModel

__all__ = [
    "LinUcbPolicy",
    "LoggedEvent",
    "ReplayResult",
    "StaticCtrPolicy",
    "build_logged_stream",
    "replay_estimate",
]

#: Examination-model click probabilities (ClickSimulator defaults): a
#: logged arm is clicked with ``NOISE + CLICK_GIVEN_RELEVANT * grade``.
_NOISE_CLICK = 0.01
_CLICK_GIVEN_RELEVANT = 0.6


@dataclass(frozen=True, slots=True)
class LoggedEvent:
    """One logged serving decision: context, uniform arm, realised reward."""

    user_id: int
    msg_id: int
    timestamp: float
    pool: tuple[int, ...]
    features: dict[int, tuple]  # ad_id -> feature vector x
    arm: int  # the logged (uniformly random) ad
    reward: int  # 0/1 click on the logged arm


@dataclass(frozen=True, slots=True)
class ReplayResult:
    """A policy's replay grade: CTR over its matched-event subsample."""

    policy: str
    events: int
    matched: int
    clicks: int

    @property
    def ctr(self) -> float:
        return self.clicks / self.matched if self.matched else 0.0

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "events": self.events,
            "matched": self.matched,
            "clicks": self.clicks,
            "ctr": self.ctr,
        }


def _sparse_dot(vec: dict, terms: dict) -> float:
    """Dot of two sparse term->weight dicts (iterate the smaller one)."""
    if len(terms) < len(vec):
        return float(sum(weight * vec.get(term, 0.0) for term, weight in terms.items()))
    return float(sum(weight * terms.get(term, 0.0) for term, weight in vec.items()))


def build_logged_stream(
    workload,
    *,
    events: int,
    pool_size: int = 8,
    content_pool: int = 30,
    seed: int = 0,
) -> list[LoggedEvent]:
    """A seeded uniform-logging stream over the workload's ground truth.

    Posts round-robin through the workload; each event picks one follower
    of the author, builds an arm pool of ``pool_size`` ads — half sampled
    from the post's top-``content_pool`` content matches, half from the
    whole corpus — logs a uniformly random arm, and draws its click from
    the graded examination model. Features per arm are
    ``(1, content, affinity, 1)`` where ``affinity`` is the cosine of the
    ad's terms against a running mean of the vectors the user has seen —
    the same (context, profile) signal family the engine's stage uses.
    """
    rng = random.Random(seed)
    truth = workload.ground_truth
    graph = workload.graph
    vectorizer = workload.vectorizer
    tokenizer = workload.tokenizer
    ads = sorted(workload.ads, key=lambda ad: ad.ad_id)
    ad_ids = [ad.ad_id for ad in ads]
    terms_of = {ad.ad_id: ad.terms for ad in ads}

    # Per-post message vector + top content matches, computed once.
    post_vecs: dict[int, dict] = {}
    post_top: dict[int, list[int]] = {}
    for post in workload.posts:
        vec = vectorizer.transform(tokenizer.tokenize(post.text))
        post_vecs[post.msg_id] = vec
        scored = sorted(
            ((_sparse_dot(vec, ad.terms), ad.ad_id) for ad in ads),
            key=lambda pair: (-pair[0], pair[1]),
        )
        post_top[post.msg_id] = [ad_id for _score, ad_id in scored[:content_pool]]

    # Running per-user profile: unnormalised mean of seen message vectors.
    profiles: dict[int, dict] = {}
    seen_counts: dict[int, int] = {}

    stream: list[LoggedEvent] = []
    post_cycle = [post for post in workload.posts if graph.followers(post.author_id)]
    if not post_cycle:
        return stream
    index = 0
    while len(stream) < events:
        post = post_cycle[index % len(post_cycle)]
        index += 1
        followers = sorted(graph.followers(post.author_id))
        user_id = rng.choice(followers)
        vec = post_vecs[post.msg_id]

        matched_half = rng.sample(
            post_top[post.msg_id], min(pool_size // 2, len(post_top[post.msg_id]))
        )
        pool_set = dict.fromkeys(matched_half)
        while len(pool_set) < pool_size:
            pool_set[rng.choice(ad_ids)] = None
        pool = tuple(sorted(pool_set))

        profile = profiles.get(user_id)
        count = seen_counts.get(user_id, 0)
        features: dict[int, tuple] = {}
        for ad_id in pool:
            terms = terms_of[ad_id]
            content = _sparse_dot(vec, terms)
            affinity = (
                _sparse_dot(profile, terms) / count if profile else 0.0
            )
            features[ad_id] = (1.0, content, affinity, 1.0)

        arm = rng.choice(pool)
        grade = truth.grade(arm, post.msg_id, user_id, post.timestamp)
        p_click = _NOISE_CLICK + _CLICK_GIVEN_RELEVANT * grade
        reward = 1 if rng.random() < p_click else 0

        stream.append(
            LoggedEvent(
                user_id=user_id,
                msg_id=post.msg_id,
                timestamp=post.timestamp,
                pool=pool,
                features=features,
                arm=arm,
                reward=reward,
            )
        )

        # The user "saw" this message: fold it into their profile.
        if profile is None:
            profile = profiles[user_id] = {}
        for term, weight in vec.items():
            profile[term] = profile.get(term, 0.0) + weight
        seen_counts[user_id] = count + 1
    return stream


class StaticCtrPolicy:
    """The static baseline: content score + Beta-smoothed per-ad CTR.

    Mirrors the engine's static stage shape — a fixed context score plus a
    CTR quality estimate that updates from observed clicks — with no
    per-ad feature weights and no exploration bonus.
    """

    name = "static-ctr"

    def __init__(
        self, *, prior_ctr: float = 0.05, prior_strength: float = 20.0
    ) -> None:
        self._ctr = CtrEstimator(
            prior_ctr=prior_ctr, prior_strength=prior_strength
        )

    def select(self, event: LoggedEvent) -> int:
        return min(
            event.pool,
            key=lambda ad_id: (
                -(event.features[ad_id][1] + self._ctr.estimate(ad_id)),
                ad_id,
            ),
        )

    def update(self, event: LoggedEvent) -> None:
        self._ctr.record_impression(event.arm)
        if event.reward:
            self._ctr.record_click(event.arm)


class LinUcbPolicy:
    """Hybrid LinUCB over the logged features (immediate updates).

    Li et al.'s hybrid form: one *shared* ridge model carries the feature
    weights every arm learns from (the matched subsample is far too sparse
    to fit 4 coefficients per ad — ~4 updates/arm at T8 scale), while the
    arm-specific component is a Beta-smoothed per-arm CTR folded in as a
    feature the shared model weighs. Offline replay has no sharding to
    coordinate, so updates fold into the model directly instead of through
    the engine's epoch machinery — the ridge/Sherman–Morrison math itself
    is the property-tested :class:`ArmModel`.
    """

    name = "linucb"

    def __init__(
        self,
        *,
        alpha: float = 0.1,
        ridge_lambda: float = 1.0,
        prior_ctr: float = 0.05,
        prior_strength: float = 20.0,
    ) -> None:
        self.alpha = float(alpha)
        self.ridge_lambda = float(ridge_lambda)
        self._model = ArmModel(4, self.ridge_lambda)
        self._ctr = CtrEstimator(
            prior_ctr=prior_ctr, prior_strength=prior_strength
        )

    def _x(self, event: LoggedEvent, ad_id: int) -> np.ndarray:
        bias, content, affinity, _position = event.features[ad_id]
        return np.asarray(
            (bias, content, affinity, self._ctr.estimate(ad_id)),
            dtype=np.float64,
        )

    def select(self, event: LoggedEvent) -> int:
        model = self._model
        return min(
            event.pool,
            key=lambda ad_id: (
                -model.ucb(self._x(event, ad_id), self.alpha),
                ad_id,
            ),
        )

    def update(self, event: LoggedEvent) -> None:
        xv = self._x(event, event.arm)
        self._model.add_impression(xv)
        if event.reward:
            self._model.add_click(xv)
        self._ctr.record_impression(event.arm)
        if event.reward:
            self._ctr.record_click(event.arm)

    def state_dict(self) -> dict:
        return {
            "shared": self._model.to_state(),
            "ctr": {
                str(ad_id): [
                    self._ctr.impressions_of(ad_id),
                    self._ctr.clicks_of(ad_id),
                ]
                for ad_id in sorted(self._ctr.observed_ads())
            },
        }


def replay_estimate(policy, stream, *, warm_fraction: float = 0.0) -> ReplayResult:
    """Li et al.'s matched-event replay: CTR over events the policy agrees
    with the uniform logger on, updating the policy online as it matches.

    ``warm_fraction`` discounts the first fraction of the stream from the
    CTR estimate (updates still run): both policies burn the same warm-up,
    so the T8 grade compares *converged* behaviour instead of averaging in
    each policy's cold-start regret.
    """
    matched = 0
    clicks = 0
    warm = int(len(stream) * warm_fraction)
    for position, event in enumerate(stream):
        if policy.select(event) != event.arm:
            continue
        if position >= warm:
            matched += 1
            clicks += event.reward
        policy.update(event)
    return ReplayResult(
        policy=policy.name,
        events=len(stream),
        matched=matched,
        clicks=clicks,
    )
