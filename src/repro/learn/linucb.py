"""Per-ad LinUCB models and the learning rerank stage.

Each ad (arm) keeps a ridge-regression design matrix ``A = λI + Σ x·xᵀ``
and reward vector ``b = Σ r·x`` over a small dense feature vector built
from the delivery's already-computed context scores. The served score is
the classic LinUCB upper confidence bound ``θ·x + α·√(xᵀ A⁻¹ x)`` with
``θ = A⁻¹ b``; ``A⁻¹`` is maintained incrementally by Sherman–Morrison
rank-1 updates (verified against ``np.linalg.inv`` by the property suite).

Consistency model — sync epochs
-------------------------------

Serving **always** reads an immutable model snapshot; online updates
(negative impressions from served slates, positive rewards from
``record_click``) accumulate as *pending records*. When the stream clock
crosses an epoch boundary (``epoch = ⌊t / sync_interval_s⌋``), the pending
records are folded into the snapshot **in canonical order** — sorted by
``(msg_id, user_id, slot, kind, ad_id)`` — so the posterior is invariant
to the order updates arrived in within the epoch.

That one rule is what makes the sharded deployments exact replicas of the
single engine: every shard serves the same snapshot, each shard only
records updates for deliveries it made (clicks are broadcast, but only the
follower's home shard holds the serving context, so exactly one shard
records the reward), and at each boundary the router concatenates all
shards' pending records and has every shard fold the identical sorted
list. The fold is a deterministic float program, so N workers end the
epoch with bit-identical models — "sum of A/b deltas" with a fixed
summation order.

QoS interaction: while the degradation ladder is on any rung
(``qos.degrading``), the stage passes the static slate through untouched
and records **no** updates — the bandit neither serves nor learns from
degraded traffic.
"""

from __future__ import annotations

import math
from dataclasses import replace
from time import perf_counter
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.obs.registry import NULL_METRICS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.pipeline import PersonalizedDelivery
    from repro.core.services import EngineServices

__all__ = [
    "FEATURE_DIM",
    "KIND_CLICK",
    "KIND_IMPRESSION",
    "POSITION_DECAY",
    "ArmModel",
    "LinUcbLearner",
    "LinUcbRerankStage",
    "features_for",
    "merge_learn_states",
    "partition_learn_state",
    "sort_records",
]

#: Dense feature layout: (bias, content score, static score, position).
#: ``content`` carries the topic/context match, ``static`` blends the
#: profile-affinity, geo and bid components the scoring model already
#: computed — so the bandit conditions on the same context signals
#: (topic mixture, geo, recency, profile affinity) as the static stage.
FEATURE_DIM = 4

KIND_IMPRESSION = 0
KIND_CLICK = 1

#: Position feature at update time: ``POSITION_DECAY ** slot``. Matches the
#: ClickSimulator's examination decay so the discount tracks the synthetic
#: examination model; serving scores use slot 0 ("if placed on top").
POSITION_DECAY = 0.7

#: One pending update: ``(msg_id, user_id, slot, kind, ad_id, x)`` with
#: ``x`` a tuple of floats. The first five fields are the canonical sort
#: key (unique per record: one delivery per (msg, user), one click per
#: served (user, ad) context).
Record = tuple


def sort_records(records: Iterable[Record]) -> list[Record]:
    """Canonical fold order: sorted by ``(msg_id, user_id, slot, kind, ad_id)``."""
    return sorted(records, key=lambda rec: rec[:5])


def features_for(content: float, static: float, slot: int = 0) -> tuple:
    """The dense feature vector for one (delivery, ad, position) triple."""
    return (1.0, float(content), float(static), POSITION_DECAY**slot)


class ArmModel:
    """One ad's ridge model: ``A = λI + Σ x xᵀ``, ``b = Σ r x``.

    ``A_inv`` is maintained by Sherman–Morrison rank-1 updates — never
    recomputed from ``A`` — so serialised state must round-trip all three
    matrices to keep restored runs bit-identical to uninterrupted ones.
    """

    __slots__ = ("A", "b", "A_inv")

    def __init__(self, dim: int = FEATURE_DIM, ridge_lambda: float = 1.0) -> None:
        self.A = np.eye(dim) * ridge_lambda
        self.A_inv = np.eye(dim) / ridge_lambda
        self.b = np.zeros(dim)

    def add_impression(self, x: np.ndarray) -> None:
        """Rank-1 design update for one (served, not clicked-yet) exposure."""
        self.A += np.outer(x, x)
        # Sherman–Morrison: (A + x xᵀ)⁻¹ = A⁻¹ - (A⁻¹x)(A⁻¹x)ᵀ / (1 + xᵀA⁻¹x)
        ax = self.A_inv @ x
        self.A_inv -= np.outer(ax, ax) / (1.0 + float(x @ ax))

    def add_click(self, x: np.ndarray) -> None:
        """Reward update (r = 1) for a previously recorded exposure."""
        self.b += x

    def theta(self) -> np.ndarray:
        return self.A_inv @ self.b

    def ucb(self, x: np.ndarray, alpha: float) -> float:
        """``θ·x + α·√(xᵀ A⁻¹ x)`` (variance clamped at 0 against drift)."""
        ax = self.A_inv @ x
        exploit = float((self.A_inv @ self.b) @ x)
        if alpha == 0.0:
            return exploit
        return exploit + alpha * math.sqrt(max(float(x @ ax), 0.0))

    def to_state(self) -> dict:
        return {
            "A": self.A.tolist(),
            "b": self.b.tolist(),
            "A_inv": self.A_inv.tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ArmModel":
        arm = cls.__new__(cls)
        arm.A = np.asarray(state["A"], dtype=np.float64)
        arm.b = np.asarray(state["b"], dtype=np.float64)
        arm.A_inv = np.asarray(state["A_inv"], dtype=np.float64)
        return arm


class LinUcbLearner:
    """The per-engine bandit: snapshot models + pending epoch records."""

    def __init__(
        self,
        *,
        alpha: float = 0.5,
        ridge_lambda: float = 1.0,
        sync_interval_s: float = 300.0,
        frozen: bool = False,
        dim: int = FEATURE_DIM,
        metrics=NULL_METRICS,
    ) -> None:
        if alpha < 0.0:
            raise ConfigError(f"alpha_ucb must be non-negative, got {alpha}")
        if ridge_lambda <= 0.0:
            raise ConfigError(
                f"linucb_lambda must be positive, got {ridge_lambda}"
            )
        if sync_interval_s <= 0.0:
            raise ConfigError(
                f"linucb_sync_interval_s must be positive, got {sync_interval_s}"
            )
        self.alpha = float(alpha)
        self.ridge_lambda = float(ridge_lambda)
        self.sync_interval_s = float(sync_interval_s)
        self.frozen = bool(frozen)
        self.dim = int(dim)
        self.metrics = metrics
        #: Routers flip this off: shard engines never self-fold, the
        #: router coordinates one cluster-wide fold per epoch boundary.
        self.auto_sync = True
        self._epoch = 0
        self._arms: dict[int, ArmModel] = {}
        self._pending: list[Record] = []
        # (user_id, ad_id) -> (msg_id, slot, x): the serving context a
        # later click resolves against (latest exposure wins).
        self._contexts: dict[tuple[int, int], tuple[int, int, tuple]] = {}

    # -- serving ---------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def num_arms(self) -> int:
        return len(self._arms)

    @property
    def num_pending(self) -> int:
        return len(self._pending)

    def epoch_of(self, timestamp: float) -> int:
        return int(float(timestamp) // self.sync_interval_s)

    def bonus(self, ad_id: int, x: Sequence[float]) -> float:
        """The UCB score adjustment for one slate entry (snapshot read)."""
        arm = self._arms.get(ad_id)
        xv = np.asarray(x, dtype=np.float64)
        if arm is None:
            # Unexplored arm: θ = 0, A⁻¹ = I/λ — pure exploration bonus.
            if self.alpha == 0.0:
                return 0.0
            return self.alpha * math.sqrt(float(xv @ xv) / self.ridge_lambda)
        return arm.ucb(xv, self.alpha)

    def rerank(self, slate):
        """Blend UCB bonuses into a served slate.

        Returns ``(slate, changed)``. When every bonus is exactly ``0.0``
        (zero models and ``alpha = 0``) the input is returned untouched —
        the byte-identity the differential oracle relies on.
        """
        bonuses = [
            self.bonus(entry.ad_id, features_for(entry.content, entry.static))
            for entry in slate
        ]
        if not any(bonus != 0.0 for bonus in bonuses):
            return slate, False
        rescored = sorted(
            (
                replace(entry, score=entry.score + bonus)
                for entry, bonus in zip(slate, bonuses)
            ),
            key=lambda entry: (-entry.score, entry.ad_id),
        )
        return type(slate)(rescored), True

    # -- online updates --------------------------------------------------

    def observe_slate(self, msg_id: int, user_id: int, slate) -> None:
        """Record negative impressions + click contexts for a served slate."""
        if self.frozen:
            return
        msg = int(msg_id)
        user = int(user_id)
        for slot, entry in enumerate(slate):
            x = features_for(entry.content, entry.static, slot)
            self._pending.append(
                (msg, user, slot, KIND_IMPRESSION, int(entry.ad_id), x)
            )
            self._contexts[(user, int(entry.ad_id))] = (msg, slot, x)

    def record_click(
        self,
        ad_id: int,
        *,
        user_id: int | None = None,
        slot_index: int | None = None,
    ) -> bool:
        """Attribute a click to its serving context (reward r = 1).

        The stored context (from the slate actually served) is
        authoritative for position and features; ``slot_index`` is the
        caller-observed slate position and is accepted for API symmetry.
        Legacy calls without ``user_id`` update nothing here (the CTR
        estimator still sees them) — there is no context to resolve.
        """
        if self.frozen or user_id is None:
            return False
        ctx = self._contexts.pop((int(user_id), int(ad_id)), None)
        if ctx is None:
            return False
        msg_id, slot, x = ctx
        self._pending.append(
            (msg_id, int(user_id), slot, KIND_CLICK, int(ad_id), x)
        )
        return True

    # -- epoch sync ------------------------------------------------------

    def maybe_sync(self, now: float) -> bool:
        """Fold pending records when ``now`` crossed an epoch boundary.

        Only the single (un-sharded) engine calls this; routers set
        ``auto_sync = False`` and drive :meth:`drain_pending` /
        :meth:`apply_sync` so every shard folds the same record list.
        """
        epoch = self.epoch_of(now)
        if epoch <= self._epoch:
            return False
        self.apply_sync(epoch, sort_records(self.drain_pending()))
        return True

    def drain_pending(self) -> list[Record]:
        pending, self._pending = self._pending, []
        return pending

    def apply_sync(self, epoch: int, records: Sequence[Record]) -> None:
        """Fold canonically-sorted ``records`` and advance to ``epoch``."""
        started = perf_counter()
        arms = self._arms
        for _msg_id, _user_id, _slot, kind, ad_id, x in records:
            arm = arms.get(ad_id)
            if arm is None:
                arm = arms[ad_id] = ArmModel(self.dim, self.ridge_lambda)
            xv = np.asarray(x, dtype=np.float64)
            if kind == KIND_CLICK:
                arm.add_click(xv)
            else:
                arm.add_impression(xv)
        self._epoch = int(epoch)
        metrics = self.metrics
        if metrics.enabled:
            at = float(epoch) * self.sync_interval_s
            metrics.inc("linucb_updates", float(len(records)))
            metrics.inc("linucb_syncs")
            metrics.set_gauge("linucb_model_norm", self.model_norm())
            metrics.set_gauge("linucb_arms", float(len(arms)))
            metrics.observe_stage("linucb_sync", perf_counter() - started, at)

    def model_norm(self) -> float:
        """Σ‖θ_a‖₂ over all arms — the drift gauge exported per sync."""
        return float(
            sum(np.linalg.norm(arm.theta()) for arm in self._arms.values())
        )

    # -- state -----------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe state; deterministic (sorted) layout.

        ``models``/``epoch`` are the serving snapshot — identical on every
        shard of a cluster. ``pending``/``contexts`` are the per-shard
        residue of the open epoch; merged cluster payloads concatenate
        them, and restores re-partition them by the follower's home shard.
        """
        models = {
            str(ad_id): self._arms[ad_id].to_state()
            for ad_id in sorted(self._arms)
        }
        pending = [
            [msg, user, slot, kind, ad_id, list(x)]
            for msg, user, slot, kind, ad_id, x in sort_records(self._pending)
        ]
        contexts: dict[str, dict[str, list]] = {}
        for (user, ad_id), (msg, slot, x) in sorted(self._contexts.items()):
            contexts.setdefault(str(user), {})[str(ad_id)] = [
                msg,
                slot,
                list(x),
            ]
        return {
            "epoch": self._epoch,
            "models": models,
            "pending": pending,
            "contexts": contexts,
        }

    def load_state(self, payload: dict) -> None:
        self._epoch = int(payload["epoch"])
        self._arms = {
            int(ad_id): ArmModel.from_state(state)
            for ad_id, state in payload["models"].items()
        }
        self._pending = [
            (
                int(msg),
                int(user),
                int(slot),
                int(kind),
                int(ad_id),
                tuple(float(value) for value in x),
            )
            for msg, user, slot, kind, ad_id, x in payload["pending"]
        ]
        self._contexts = {
            (int(user), int(ad_id)): (
                int(msg),
                int(slot),
                tuple(float(value) for value in x),
            )
            for user, per_user in payload["contexts"].items()
            for ad_id, (msg, slot, x) in per_user.items()
        }


def partition_learn_state(payload: dict, shard: int, shard_of) -> dict:
    """The slice of a merged learner payload owned by one shard.

    The snapshot (``models``/``epoch``) replicates everywhere; the open
    epoch's ``pending`` records and click ``contexts`` go to the follower's
    home shard — exactly where an uninterrupted run would have produced
    them, for any worker count.
    """
    return {
        "epoch": payload["epoch"],
        "models": payload["models"],
        "pending": [
            record
            for record in payload["pending"]
            if shard_of(int(record[1])) == shard
        ],
        "contexts": {
            user: per_user
            for user, per_user in payload["contexts"].items()
            if shard_of(int(user)) == shard
        },
    }


def merge_learn_states(states: Sequence[dict | None]) -> dict | None:
    """Merge per-shard learner payloads into the logical single-engine one.

    Snapshots are bit-identical across shards by construction (every shard
    folds the same sorted record list each epoch), so the first shard's
    ``models``/``epoch`` stand for all; pending records concatenate into
    canonical order and contexts union (home shards are disjoint).
    """
    present = [state for state in states if state is not None]
    if not present:
        return None
    pending = [
        tuple(record[:5]) + (tuple(record[5]),)
        for state in present
        for record in state["pending"]
    ]
    contexts: dict[str, dict[str, list]] = {}
    for state in present:
        for user, per_user in state["contexts"].items():
            contexts.setdefault(user, {}).update(per_user)
    return {
        "epoch": present[0]["epoch"],
        "models": present[0]["models"],
        "pending": [list(rec[:5]) + [list(rec[5])] for rec in sort_records(pending)],
        "contexts": {
            user: dict(sorted(contexts[user].items(), key=lambda kv: int(kv[0])))
            for user in sorted(contexts, key=int)
        },
    }


class LinUcbRerankStage:
    """Wraps a mode's personalize stage with the LinUCB rerank + updates.

    Composition keeps the base stage's candidate/certificate machinery
    untouched: the wrapper re-scores the *served slate* with each ad's UCB
    bonus, re-sorts by the engine-wide ``(-score, ad_id)`` tie rule, then
    records the exposure as pending updates. It intentionally does not
    declare ``supports_batch``, so the pipeline's fused batch fast path
    (valid only for stateless stages) disables itself automatically.
    """

    span_name = "personalize[linucb]"

    def __init__(self, services: "EngineServices", base) -> None:
        self._services = services
        self._base = base
        self._learner = services.learner

    @property
    def base(self):
        return self._base

    def personalize(
        self, event, candidates, user_id, state, profile, profile_vec
    ) -> "PersonalizedDelivery":
        delivered = self._base.personalize(
            event, candidates, user_id, state, profile, profile_vec
        )
        qos = self._services.qos
        if qos is not None and qos.degrading:
            # Ladder rung active: serve the static CTR slate untouched and
            # learn nothing from degraded traffic.
            return delivered
        slate = delivered.slate
        if not slate:
            return delivered
        learner = self._learner
        reranked, changed = learner.rerank(slate)
        if changed:
            delivered = delivered._replace(slate=reranked)
        learner.observe_slate(event.msg_id, user_id, reranked)
        return delivered
