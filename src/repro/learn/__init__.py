"""Online-learning rerank layer: LinUCB contextual bandits on click feedback.

The package adds a learning :class:`PersonalizeStage` variant on top of the
static CTR pipeline (`Li, Chu, Langford & Schapire, WWW 2010
<https://arxiv.org/abs/1003.0146>`_):

* :mod:`repro.learn.linucb` — per-ad ridge models with Sherman–Morrison
  incremental inverses, the epoch-synchronised update machinery that keeps
  sharded deployments bit-identical, and the rerank stage wrapper.
* :mod:`repro.learn.replay` — the unbiased off-policy replay estimator used
  to grade the bandit against the static CTR model (benchmark T8).
"""

from repro.learn.linucb import (
    FEATURE_DIM,
    ArmModel,
    LinUcbLearner,
    LinUcbRerankStage,
    features_for,
    merge_learn_states,
    partition_learn_state,
    sort_records,
)
from repro.learn.replay import (
    LinUcbPolicy,
    LoggedEvent,
    ReplayResult,
    StaticCtrPolicy,
    build_logged_stream,
    replay_estimate,
)

__all__ = [
    "FEATURE_DIM",
    "ArmModel",
    "LinUcbLearner",
    "LinUcbRerankStage",
    "LinUcbPolicy",
    "LoggedEvent",
    "ReplayResult",
    "StaticCtrPolicy",
    "build_logged_stream",
    "features_for",
    "merge_learn_states",
    "partition_learn_state",
    "replay_estimate",
    "sort_records",
]
