"""The interface every evaluated recommender implements, plus shared state.

The harness drives recommenders with two calls per post:

* ``slate(user_id, msg_id, message_vec, timestamp, k)`` for each sampled
  delivery — the ranked ad ids to show;
* ``observe_post(author_id, message_vec, timestamp)`` afterwards — fold the
  message into any internal state (profiles), so serving never peeks at the
  message it is being judged on.
"""

from __future__ import annotations

import abc

from repro.ads.corpus import AdCorpus
from repro.core.config import ScoringWeights
from repro.geo.point import GeoPoint
from repro.profiles.profile import ProfileStore
from repro.util.sparse import MutableSparseVector, SparseVector


class BaselineState:
    """Read/write state shared by the scan-style baselines: the corpus, the
    users' (home) locations and an independent profile store."""

    def __init__(
        self,
        corpus: AdCorpus,
        locations: dict[int, GeoPoint | None],
        *,
        weights: ScoringWeights | None = None,
        profile_half_life_s: float | None = 6 * 3600.0,
    ) -> None:
        self.corpus = corpus
        self.locations = dict(locations)
        self.weights = weights or ScoringWeights()
        self.profiles = ProfileStore(profile_half_life_s)

    def location_of(self, user_id: int) -> GeoPoint | None:
        return self.locations.get(user_id)

    def profile_vector(self, user_id: int) -> MutableSparseVector:
        return self.profiles.get_or_create(user_id).vector()

    def eligible(self, ad_id: int, user_id: int, timestamp: float) -> bool:
        """Active + targeting predicate, shared by every baseline."""
        if not self.corpus.is_active(ad_id):
            return False
        ad = self.corpus.get(ad_id)
        return ad.targeting.matches(self.location_of(user_id), timestamp)


class SlateRecommender(abc.ABC):
    """One evaluated method."""

    name: str = "unnamed"

    @abc.abstractmethod
    def slate(
        self,
        user_id: int,
        msg_id: int,
        message_vec: SparseVector,
        timestamp: float,
        k: int,
    ) -> list[int]:
        """Ranked ad ids for one delivery (length <= k)."""

    def observe_post(
        self, author_id: int, message_vec: SparseVector, timestamp: float
    ) -> None:
        """Fold a served post into internal state; default: stateless."""
