"""Adapter exposing the engine's shared-candidate pipeline through the
baseline interface, so the *system* sits in the same effectiveness tables
as its baselines and is driven by the same harness."""

from __future__ import annotations

from repro.baselines.base import BaselineState, SlateRecommender
from repro.core.candidates import CandidateSet, SharedCandidateGenerator
from repro.core.config import EngineConfig
from repro.core.rerank import Personalizer
from repro.core.scoring import ScoringModel
from repro.core.services import EngineServices
from repro.index.inverted import AdInvertedIndex
from repro.util.sparse import SparseVector


class SystemRecommender(SlateRecommender):
    """The context-aware system (shared candidates + personalisation)."""

    name = "system"

    def __init__(self, state: BaselineState, config: EngineConfig | None = None) -> None:
        self._state = state
        self._config = config or EngineConfig(weights=state.weights)
        self._index = AdInvertedIndex.from_corpus(state.corpus, subscribe=True)
        self._scoring = ScoringModel(state.corpus, self._config.weights)
        self._candidate_gen = SharedCandidateGenerator(
            self._index, self._config.overfetch
        )
        # A ranking-only services slice: no graph, budgets or clock — the
        # baseline harness owns profile/location state itself.
        self._personalizer = Personalizer(
            EngineServices(
                config=self._config,
                corpus=state.corpus,
                index=self._index,
                scoring=self._scoring,
            )
        )
        self._cached_msg: int | None = None
        self._cached_candidates: CandidateSet | None = None

    def _candidates_for(self, msg_id: int, message_vec: SparseVector) -> CandidateSet:
        """One shared probe per message, reused across its deliveries."""
        if self._cached_msg != msg_id or self._cached_candidates is None:
            self._cached_candidates = self._candidate_gen.generate(message_vec)
            self._cached_msg = msg_id
        return self._cached_candidates

    def slate(
        self,
        user_id: int,
        msg_id: int,
        message_vec: SparseVector,
        timestamp: float,
        k: int,
    ) -> list[int]:
        state = self._state
        profile = state.profiles.get_or_create(user_id)
        result = self._personalizer.slate_for(
            self._candidates_for(msg_id, message_vec),
            message_vec,
            user_id,
            profile.vector(),
            profile.epoch,
            state.location_of(user_id),
            timestamp,
            k,
        )
        return [scored.ad_id for scored in result.slate]

    def observe_post(
        self, author_id: int, message_vec: SparseVector, timestamp: float
    ) -> None:
        self._state.profiles.get_or_create(author_id).update(message_vec, timestamp)
