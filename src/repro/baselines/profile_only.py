"""Profile-only baseline: what interest-targeted advertising without
context does — the original paper's motivating strawman (user interests
evolve slowly, so ads repeat and ignore what the user is reading now)."""

from __future__ import annotations

from repro.baselines.base import BaselineState, SlateRecommender
from repro.util.heap import BoundedTopK
from repro.util.sparse import SparseVector, dot


class ProfileOnlyRecommender(SlateRecommender):
    """beta-only ranking over the user's decayed interest vector."""

    name = "profile-only"

    def __init__(self, state: BaselineState) -> None:
        self._state = state

    def slate(
        self,
        user_id: int,
        msg_id: int,
        message_vec: SparseVector,
        timestamp: float,
        k: int,
    ) -> list[int]:
        state = self._state
        profile_vec = state.profile_vector(user_id)
        if not profile_vec:
            return []
        heap = BoundedTopK(k)
        for ad in state.corpus.active_ads():
            affinity = dot(profile_vec, ad.terms)
            if affinity <= 0.0:
                continue
            if not state.eligible(ad.ad_id, user_id, timestamp):
                continue
            heap.push(affinity, ad.ad_id)
        return [entry.item for entry in heap.results()]

    def observe_post(
        self, author_id: int, message_vec: SparseVector, timestamp: float
    ) -> None:
        self._state.profiles.get_or_create(author_id).update(message_vec, timestamp)
