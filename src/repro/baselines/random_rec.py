"""Random baseline: uniform eligible ads — the chance floor for every
effectiveness metric."""

from __future__ import annotations

import random

from repro.baselines.base import BaselineState, SlateRecommender
from repro.util.sparse import SparseVector


class RandomRecommender(SlateRecommender):
    """Seeded uniform sampling over eligible ads."""

    name = "random"

    def __init__(self, state: BaselineState, *, seed: int = 0) -> None:
        self._state = state
        self._rng = random.Random(seed)

    def slate(
        self,
        user_id: int,
        msg_id: int,
        message_vec: SparseVector,
        timestamp: float,
        k: int,
    ) -> list[int]:
        state = self._state
        eligible = [
            ad.ad_id
            for ad in state.corpus.active_ads()
            if state.eligible(ad.ad_id, user_id, timestamp)
        ]
        if len(eligible) <= k:
            return eligible
        return self._rng.sample(eligible, k)
