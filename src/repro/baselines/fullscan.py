"""Full-scan baseline: the exact ranking, paid for in full every delivery.

Scores every active ad with the complete ranking function (no index, no
sharing, no pruning). Efficiency-wise this is the floor every indexed
method is compared against; effectiveness-wise it *defines* the system's
ranking, so the engine's shared/fallback paths are tested for equality
against it.
"""

from __future__ import annotations

from repro.baselines.base import BaselineState, SlateRecommender
from repro.util.heap import BoundedTopK
from repro.util.sparse import SparseVector, dot


class FullScanRecommender(SlateRecommender):
    """Exact combined scoring by corpus scan."""

    name = "full-scan"

    def __init__(self, state: BaselineState) -> None:
        self._state = state

    def slate(
        self,
        user_id: int,
        msg_id: int,
        message_vec: SparseVector,
        timestamp: float,
        k: int,
    ) -> list[int]:
        state = self._state
        weights = state.weights
        location = state.location_of(user_id)
        profile_vec = state.profile_vector(user_id)
        heap = BoundedTopK(k)
        for ad in state.corpus.active_ads():
            content = dot(message_vec, ad.terms)
            profile_affinity = dot(profile_vec, ad.terms)
            if content <= 0.0 and profile_affinity <= 0.0:
                continue  # relevance floor
            if not ad.targeting.matches(location, timestamp):
                continue
            score = (
                weights.alpha * content
                + weights.beta * profile_affinity
                + weights.gamma * ad.targeting.proximity(location)
                + weights.delta * state.corpus.normalized_bid(ad.ad_id)
            )
            heap.push(score, ad.ad_id)
        return [entry.item for entry in heap.results()]

    def observe_post(
        self, author_id: int, message_vec: SparseVector, timestamp: float
    ) -> None:
        self._state.profiles.get_or_create(author_id).update(message_vec, timestamp)
