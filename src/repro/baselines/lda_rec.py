"""LDA topic-similarity baseline.

The original paper's conclusion names latent topic models (LDA and its
decayed variants) as the natural comparison family. This baseline fits LDA
offline on the post corpus, pre-infers a topic distribution per ad, and at
serving time infers the message's topic distribution and ranks ads by the
cosine between the two (blended with the user's accumulated topic
interests). It is far more expensive per event than the term-space system
— which is exactly the trade-off the effectiveness table shows.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineState, SlateRecommender
from repro.text.tokenizer import Tokenizer
from repro.topics.lda import LdaModel
from repro.util.heap import BoundedTopK
from repro.util.sparse import SparseVector


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    denominator = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denominator == 0.0:
        return 0.0
    return float(np.dot(a, b)) / denominator


class LdaRecommender(SlateRecommender):
    """Rank ads by topic-space similarity to the message and the user."""

    name = "lda"

    def __init__(
        self,
        state: BaselineState,
        model: LdaModel,
        *,
        tokenizer: Tokenizer | None = None,
        message_weight: float = 0.7,
        infer_iterations: int = 15,
    ) -> None:
        self._state = state
        self._model = model
        self._tokenizer = tokenizer or Tokenizer()
        self._message_weight = message_weight
        self._infer_iterations = infer_iterations
        self._ad_topics: dict[int, np.ndarray] = {
            ad.ad_id: model.infer(
                self._tokenizer.tokenize(ad.text), iterations=infer_iterations
            )
            for ad in state.corpus.all_ads()
        }
        self._user_topics: dict[int, np.ndarray] = {}

    @classmethod
    def fit_on_posts(
        cls,
        state: BaselineState,
        post_texts: list[str],
        *,
        num_topics: int = 20,
        iterations: int = 60,
        seed: int = 0,
        tokenizer: Tokenizer | None = None,
    ) -> "LdaRecommender":
        """Fit the topic model on the training post corpus, then build."""
        tokenizer = tokenizer or Tokenizer()
        model = LdaModel(num_topics, iterations=iterations, seed=seed)
        model.fit([tokenizer.tokenize(text) for text in post_texts])
        return cls(state, model, tokenizer=tokenizer)

    def slate(
        self,
        user_id: int,
        msg_id: int,
        message_vec: SparseVector,
        timestamp: float,
        k: int,
    ) -> list[int]:
        # The harness hands us the TF-IDF vector; LDA needs tokens, and the
        # vector's keys are exactly the (stemmed) tokens.
        message_topics = self._model.infer(
            list(message_vec), iterations=self._infer_iterations
        )
        blend = message_topics * self._message_weight
        user_topics = self._user_topics.get(user_id)
        if user_topics is not None:
            blend = blend + (1.0 - self._message_weight) * user_topics
        heap = BoundedTopK(k)
        state = self._state
        for ad_id, ad_topics in self._ad_topics.items():
            if not state.eligible(ad_id, user_id, timestamp):
                continue
            similarity = _cosine(blend, ad_topics)
            if similarity > 0.0:
                heap.push(similarity, ad_id)
        return [entry.item for entry in heap.results()]

    def observe_post(
        self, author_id: int, message_vec: SparseVector, timestamp: float
    ) -> None:
        """Accumulate the author's topic interests with a simple decay."""
        message_topics = self._model.infer(
            list(message_vec), iterations=self._infer_iterations
        )
        existing = self._user_topics.get(author_id)
        if existing is None:
            self._user_topics[author_id] = message_topics
        else:
            updated = 0.8 * existing + 0.2 * message_topics
            self._user_topics[author_id] = updated / updated.sum()
