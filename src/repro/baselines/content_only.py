"""Content-only baseline: rank by message affinity alone.

What a non-personalised contextual matcher does — no profile, no geo
preference, no bid. Targeting predicates still apply (serving an ad
outside its targeted region is a policy violation, not a ranking choice).
"""

from __future__ import annotations

from repro.baselines.base import BaselineState, SlateRecommender
from repro.util.heap import BoundedTopK
from repro.util.sparse import SparseVector, dot


class ContentOnlyRecommender(SlateRecommender):
    """alpha-only ranking."""

    name = "content-only"

    def __init__(self, state: BaselineState) -> None:
        self._state = state

    def slate(
        self,
        user_id: int,
        msg_id: int,
        message_vec: SparseVector,
        timestamp: float,
        k: int,
    ) -> list[int]:
        state = self._state
        heap = BoundedTopK(k)
        for ad in state.corpus.active_ads():
            content = dot(message_vec, ad.terms)
            if content <= 0.0:
                continue
            if not state.eligible(ad.ad_id, user_id, timestamp):
                continue
            heap.push(content, ad.ad_id)
        return [entry.item for entry in heap.results()]
