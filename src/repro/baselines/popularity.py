"""Popularity baseline: highest-bid eligible ads, no relevance at all.

The "what the auction alone would do" floor: the platform serves whoever
pays the most, subject only to targeting predicates.
"""

from __future__ import annotations

from repro.baselines.base import BaselineState, SlateRecommender
from repro.util.sparse import SparseVector


class PopularityRecommender(SlateRecommender):
    """Bid-descending ranking."""

    name = "popularity"

    def __init__(self, state: BaselineState) -> None:
        self._state = state
        self._ranked = sorted(
            (ad.ad_id for ad in state.corpus.all_ads()),
            key=lambda ad_id: (-state.corpus.get(ad_id).bid, ad_id),
        )

    def slate(
        self,
        user_id: int,
        msg_id: int,
        message_vec: SparseVector,
        timestamp: float,
        k: int,
    ) -> list[int]:
        state = self._state
        slate: list[int] = []
        for ad_id in self._ranked:
            if state.eligible(ad_id, user_id, timestamp):
                slate.append(ad_id)
                if len(slate) == k:
                    break
        return slate
