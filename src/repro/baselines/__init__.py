"""Comparison recommenders for the effectiveness and efficiency studies.

Every baseline implements the same :class:`~repro.baselines.base.SlateRecommender`
interface the evaluation harness drives, so all methods see identical event
sequences and are judged against identical ground truth.
"""

from repro.baselines.base import BaselineState, SlateRecommender
from repro.baselines.content_only import ContentOnlyRecommender
from repro.baselines.engine_adapter import SystemRecommender
from repro.baselines.fullscan import FullScanRecommender
from repro.baselines.lda_rec import LdaRecommender
from repro.baselines.popularity import PopularityRecommender
from repro.baselines.profile_only import ProfileOnlyRecommender
from repro.baselines.random_rec import RandomRecommender

__all__ = [
    "BaselineState",
    "ContentOnlyRecommender",
    "FullScanRecommender",
    "LdaRecommender",
    "PopularityRecommender",
    "ProfileOnlyRecommender",
    "RandomRecommender",
    "SlateRecommender",
    "SystemRecommender",
]
