"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one base type at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value was supplied."""


class CorpusError(ReproError):
    """A corpus-level operation failed (duplicate ids, empty corpus, ...)."""


class UnknownAdError(CorpusError, KeyError):
    """An operation referenced an ad id that is not in the corpus."""

    def __init__(self, ad_id: int) -> None:
        super().__init__(f"unknown ad id: {ad_id!r}")
        self.ad_id = ad_id


class UnknownUserError(ReproError, KeyError):
    """An operation referenced a user id that is not registered."""

    def __init__(self, user_id: int) -> None:
        super().__init__(f"unknown user id: {user_id!r}")
        self.user_id = user_id


class BudgetError(ReproError):
    """A budget operation was invalid (e.g. charging an exhausted ad)."""


class IndexError_(ReproError):
    """An index-level invariant was violated."""


class StreamError(ReproError):
    """The stream simulator was driven with inconsistent events."""


class WorkerCrashError(StreamError):
    """A cluster worker process died mid-dispatch.

    Subclasses :class:`StreamError` so callers written against the
    router's existing failure contract (retry/failover/abort on
    ``StreamError``) handle real process crashes the same way they handle
    injected shard outages.
    """

    def __init__(self, shard: int, detail: str) -> None:
        super().__init__(f"shard {shard} worker crashed: {detail}")
        self.shard = shard


class EvaluationError(ReproError):
    """The evaluation harness received inconsistent inputs."""


class TraceError(ReproError):
    """A scenario record/replay trace was malformed or incompatible."""
