"""News-feed assembly: interleaving ad slates into organic timelines."""

from repro.feed.assembler import AdSlotPolicy, FeedAssembler, FeedItem

__all__ = ["AdSlotPolicy", "FeedAssembler", "FeedItem"]
