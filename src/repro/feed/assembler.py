"""Assembling the user-facing feed: organic messages with ad slots.

The matching engine answers "which ads fit this delivery"; the assembler
answers "where do ads actually appear in the timeline". Policy knobs are
the ones platforms tune:

* **slot spacing** — at most one ad every ``organic_between_ads`` organic
  items (ad load);
* **lead-in** — no ad before ``first_slot`` organic items (the top of the
  feed is sacred);
* **advertiser frequency capping** — the same advertiser appears at most
  ``advertiser_cap`` times per assembled feed;
* **ad de-duplication** — an ad already shown to this user within the
  recent-history window is skipped.

The assembler is deliberately independent of the engine: it consumes any
ranked slate source, so tests can drive it with fixtures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.scoring import ScoredAd
from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class FeedItem:
    """One rendered feed position: either organic or a sponsored slot."""

    kind: str  # "organic" | "ad"
    msg_id: int | None = None
    ad_id: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("organic", "ad"):
            raise ConfigError(f"unknown feed item kind: {self.kind!r}")
        if self.kind == "organic" and self.msg_id is None:
            raise ConfigError("organic items need msg_id")
        if self.kind == "ad" and self.ad_id is None:
            raise ConfigError("ad items need ad_id")


@dataclass(frozen=True)
class AdSlotPolicy:
    """Where ads may be placed and how often they may repeat."""

    organic_between_ads: int = 4
    first_slot: int = 2
    advertiser_cap: int = 1
    history_window: int = 30

    def __post_init__(self) -> None:
        if self.organic_between_ads < 1:
            raise ConfigError(
                f"organic_between_ads must be >= 1, got {self.organic_between_ads}"
            )
        if self.first_slot < 0:
            raise ConfigError(f"first_slot must be >= 0, got {self.first_slot}")
        if self.advertiser_cap < 1:
            raise ConfigError(
                f"advertiser_cap must be >= 1, got {self.advertiser_cap}"
            )
        if self.history_window < 0:
            raise ConfigError(
                f"history_window must be >= 0, got {self.history_window}"
            )


@dataclass
class FeedAssembler:
    """Per-user feed assembly with repeat suppression across renders.

    One assembler instance carries one user's recent-ad history; the
    engine-side owner keeps one per user.
    """

    policy: AdSlotPolicy = field(default_factory=AdSlotPolicy)
    advertiser_of: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._recent_ads: deque[int] = deque(maxlen=max(1, self.policy.history_window))

    def seen_recently(self, ad_id: int) -> bool:
        return self.policy.history_window > 0 and ad_id in self._recent_ads

    def assemble(
        self,
        organic_msg_ids: list[int],
        slate: list[ScoredAd] | tuple[ScoredAd, ...],
    ) -> list[FeedItem]:
        """Interleave a ranked slate into an organic timeline.

        Ads are consumed best-first; an ad is skipped (not deferred) when
        it violates frequency capping or was shown recently. Unplaceable
        ads are simply dropped — a feed never pads with stale slots.
        """
        feed: list[FeedItem] = []
        per_advertiser: dict[str, int] = {}
        queue = list(slate)
        cursor = 0
        organics_since_ad = 0
        organics_emitted = 0

        def try_place_ad() -> None:
            nonlocal cursor, organics_since_ad
            while cursor < len(queue):
                scored = queue[cursor]
                cursor += 1
                advertiser = self.advertiser_of.get(scored.ad_id, str(scored.ad_id))
                if self.seen_recently(scored.ad_id):
                    continue
                if per_advertiser.get(advertiser, 0) >= self.policy.advertiser_cap:
                    continue
                per_advertiser[advertiser] = per_advertiser.get(advertiser, 0) + 1
                if self.policy.history_window > 0:
                    self._recent_ads.append(scored.ad_id)
                feed.append(FeedItem(kind="ad", ad_id=scored.ad_id))
                organics_since_ad = 0
                return

        for msg_id in organic_msg_ids:
            feed.append(FeedItem(kind="organic", msg_id=msg_id))
            organics_emitted += 1
            organics_since_ad += 1
            lead_in_done = organics_emitted >= self.policy.first_slot
            if lead_in_done and organics_since_ad >= self.policy.organic_between_ads:
                try_place_ad()
        return feed

    def ad_load(self, feed: list[FeedItem]) -> float:
        """Fraction of feed positions that are sponsored."""
        if not feed:
            return 0.0
        ads = sum(1 for item in feed if item.kind == "ad")
        return ads / len(feed)
