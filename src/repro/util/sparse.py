"""Sparse-vector arithmetic over ``dict[str, float]``.

Term-weight vectors are represented as plain dictionaries mapping a term to a
non-negative weight. All functions treat a missing key as weight zero and
never mutate their inputs unless the docstring says so.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

SparseVector = Mapping[str, float]
MutableSparseVector = dict[str, float]


def dot(a: SparseVector, b: SparseVector) -> float:
    """Inner product of two sparse vectors.

    Iterates over the smaller vector so that ``dot(tweet, profile)`` costs
    O(len(tweet)) even against a large profile.
    """
    if len(a) > len(b):
        a, b = b, a
    total = 0.0
    for term, weight in a.items():
        other = b.get(term)
        if other is not None:
            total += weight * other
    return total


def norm(a: SparseVector) -> float:
    """Euclidean (L2) norm of a sparse vector."""
    return math.sqrt(sum(w * w for w in a.values()))


def cosine(a: SparseVector, b: SparseVector) -> float:
    """Cosine similarity; 0.0 when either vector is empty or all-zero."""
    denominator = norm(a) * norm(b)
    if denominator == 0.0:
        return 0.0
    return dot(a, b) / denominator


def l2_normalize(a: SparseVector) -> MutableSparseVector:
    """Return a copy of ``a`` scaled to unit L2 norm (empty stays empty)."""
    n = norm(a)
    if n == 0.0:
        return {}
    unit = {term: weight / n for term, weight in a.items()}
    # Weights tiny enough that their squares go subnormal lose most of
    # their precision inside `norm`, leaving `unit` visibly off unit
    # length. One more pass over the already-rescaled copy fixes that;
    # normal-range vectors take the first return untouched.
    if math.isclose(norm(unit), 1.0, rel_tol=1e-9):
        return unit
    return l2_normalize(unit)


def scale(a: SparseVector, factor: float) -> MutableSparseVector:
    """Return ``factor * a`` as a new dictionary."""
    return {term: weight * factor for term, weight in a.items()}


def add_scaled(
    accumulator: MutableSparseVector,
    other: SparseVector,
    factor: float = 1.0,
    *,
    prune_below: float = 0.0,
) -> MutableSparseVector:
    """In-place ``accumulator += factor * other``; returns the accumulator.

    Entries whose absolute value drops to ``prune_below`` or less are removed,
    which keeps long-lived accumulators (decayed profiles, feed contexts)
    from growing without bound.
    """
    for term, weight in other.items():
        updated = accumulator.get(term, 0.0) + factor * weight
        if abs(updated) <= prune_below:
            accumulator.pop(term, None)
        else:
            accumulator[term] = updated
    return accumulator


def top_terms(a: SparseVector, limit: int) -> list[tuple[str, float]]:
    """The ``limit`` heaviest (term, weight) pairs, heaviest first.

    Ties are broken by term so the output is deterministic.
    """
    if limit <= 0:
        return []
    return sorted(a.items(), key=lambda item: (-item[1], item[0]))[:limit]


def from_pairs(pairs: Iterable[tuple[str, float]]) -> MutableSparseVector:
    """Build a vector from (term, weight) pairs, summing duplicate terms."""
    vector: MutableSparseVector = {}
    for term, weight in pairs:
        vector[term] = vector.get(term, 0.0) + weight
    return vector
