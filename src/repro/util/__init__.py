"""Shared low-level utilities: sparse vectors, heaps, timing, sampling."""

from repro.util.heap import BoundedTopK, TopKEntry
from repro.util.sparse import (
    add_scaled,
    cosine,
    dot,
    l2_normalize,
    norm,
    scale,
    top_terms,
)
from repro.util.timers import LatencyRecorder, ThroughputMeter, Timer
from repro.util.zipf import ZipfSampler

__all__ = [
    "BoundedTopK",
    "LatencyRecorder",
    "ThroughputMeter",
    "Timer",
    "TopKEntry",
    "ZipfSampler",
    "add_scaled",
    "cosine",
    "dot",
    "l2_normalize",
    "norm",
    "scale",
    "top_terms",
]
