"""A bounded top-k accumulator built on a min-heap.

Used throughout the engine wherever the k best-scoring ads must be collected
from a larger candidate stream without sorting everything.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class TopKEntry:
    """One (score, item) result of a top-k computation."""

    score: float
    item: int


class BoundedTopK:
    """Collects the ``k`` highest-scoring integer items seen so far.

    Ties on score are broken toward the *smaller* item id (deterministic
    output regardless of push order), matching the engine-wide tie rule.
    """

    __slots__ = ("_heap", "_k")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ConfigError(f"k must be positive, got {k}")
        self._k = k
        # Min-heap of (score, -item): the worst kept entry is heap[0].
        # Using -item means that among equal scores the *largest* item id is
        # evicted first, i.e. smaller ids win ties.
        self._heap: list[tuple[float, int]] = []

    @property
    def k(self) -> int:
        return self._k

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, score: float, item: int) -> bool:
        """Offer an item; returns True if it was kept (is currently top-k)."""
        key = (score, -item)
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, key)
            return True
        if key > self._heap[0]:
            heapq.heapreplace(self._heap, key)
            return True
        return False

    def threshold(self) -> float:
        """Score of the k-th kept item, or -inf while fewer than k are held.

        Any future item must beat this score (or tie with a smaller id) to
        enter the top-k; pruning logic in the index layer relies on it.
        """
        if len(self._heap) < self._k:
            return float("-inf")
        return self._heap[0][0]

    def would_accept(self, score: float) -> bool:
        """Whether an item with this score could still enter the top-k."""
        if len(self._heap) < self._k:
            return True
        return score >= self._heap[0][0]

    def results(self) -> list[TopKEntry]:
        """Kept entries sorted best-first (score desc, then item id asc)."""
        ordered = sorted(self._heap, key=lambda key: (-key[0], -key[1]))
        return [TopKEntry(score=score, item=-negated) for score, negated in ordered]

    def items(self) -> set[int]:
        """The set of kept item ids (unordered)."""
        return {-negated for _, negated in self._heap}
