"""Zipfian sampling over a finite universe.

Social text and check-in workloads are heavily skewed; the workload
generator uses this sampler for vocabularies, locations and activity levels.
The implementation precomputes the CDF once and samples by binary search, so
draws are O(log n) and exactly reproducible from a seeded ``random.Random``.
"""

from __future__ import annotations

import bisect
import random

from repro.errors import ConfigError


class ZipfSampler:
    """Draws integers from ``{0, ..., n-1}`` with P(i) ∝ 1 / (i+1)^s."""

    __slots__ = ("_cdf", "exponent", "size")

    def __init__(self, size: int, exponent: float = 1.0) -> None:
        if size <= 0:
            raise ConfigError(f"ZipfSampler size must be positive, got {size}")
        if exponent < 0.0:
            raise ConfigError(f"Zipf exponent must be >= 0, got {exponent}")
        self.size = size
        self.exponent = exponent
        weights = [1.0 / (rank + 1) ** exponent for rank in range(size)]
        total = sum(weights)
        cumulative = 0.0
        cdf: list[float] = []
        for weight in weights:
            cumulative += weight / total
            cdf.append(cumulative)
        cdf[-1] = 1.0  # guard against floating-point shortfall
        self._cdf = cdf

    def sample(self, rng: random.Random) -> int:
        """Draw one index using the supplied random source."""
        return bisect.bisect_left(self._cdf, rng.random())

    def sample_many(self, rng: random.Random, count: int) -> list[int]:
        """Draw ``count`` independent indices."""
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        return [self.sample(rng) for _ in range(count)]

    def probability(self, index: int) -> float:
        """Exact probability mass of ``index``."""
        if not 0 <= index < self.size:
            raise ConfigError(f"index {index} outside [0, {self.size})")
        previous = self._cdf[index - 1] if index > 0 else 0.0
        return self._cdf[index] - previous
