"""Wall-clock measurement helpers used by the benchmark harness.

These are deliberately simple: a context-manager stopwatch, a latency
recorder with exact percentiles, and a throughput meter.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.errors import ConfigError


class Timer:
    """Context-manager stopwatch measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(100))
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class LatencyRecorder:
    """Accumulates individual latency samples and reports exact percentiles.

    Samples are kept in full (the simulations here record at most a few
    hundred thousand events), so percentiles are exact, not sketched.
    """

    samples: list[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ConfigError(f"latency cannot be negative: {seconds}")
        self.samples.append(seconds)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (0 < q <= 100) using nearest-rank."""
        if not 0.0 < q <= 100.0:
            raise ConfigError(f"percentile must be in (0, 100], got {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def p50(self) -> float:
        return self.percentile(50.0)

    def p95(self) -> float:
        return self.percentile(95.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one."""
        self.samples.extend(other.samples)


class ThroughputMeter:
    """Counts events against wall-clock time and reports events/second."""

    __slots__ = ("_count", "_started", "_stopped")

    def __init__(self) -> None:
        self._count = 0
        self._started: float | None = None
        self._stopped: float | None = None

    def start(self) -> None:
        self._started = time.perf_counter()
        self._stopped = None
        self._count = 0

    def tick(self, events: int = 1) -> None:
        if self._started is None:
            raise ConfigError("ThroughputMeter.tick() called before start()")
        self._count += events

    def stop(self) -> None:
        if self._started is None:
            raise ConfigError("ThroughputMeter.stop() called before start()")
        self._stopped = time.perf_counter()

    @property
    def count(self) -> int:
        return self._count

    def events_per_second(self) -> float:
        if self._started is None:
            return 0.0
        end = self._stopped if self._stopped is not None else time.perf_counter()
        elapsed = end - self._started
        if elapsed <= 0.0:
            return 0.0
        return self._count / elapsed
