"""Effectiveness study: the system against every baseline, judged on
generative ground truth (the T8 experiment, runnable standalone).

Run:  python examples/effectiveness_study.py
"""

from __future__ import annotations

from repro import WorkloadConfig, generate_workload
from repro.baselines.base import BaselineState
from repro.baselines.content_only import ContentOnlyRecommender
from repro.baselines.engine_adapter import SystemRecommender
from repro.baselines.lda_rec import LdaRecommender
from repro.baselines.popularity import PopularityRecommender
from repro.baselines.profile_only import ProfileOnlyRecommender
from repro.baselines.random_rec import RandomRecommender
from repro.eval.harness import EffectivenessHarness
from repro.eval.report import ascii_table


def main() -> None:
    workload = generate_workload(
        WorkloadConfig(
            num_users=150, num_ads=600, num_posts=200, vocab_size=3000, seed=6
        )
    )

    def state() -> BaselineState:
        return BaselineState(
            workload.build_corpus(),
            {user.user_id: user.home for user in workload.users},
        )

    print("Fitting the LDA baseline (the slow part)...")
    recommenders = {
        "system": SystemRecommender(state()),
        "content-only": ContentOnlyRecommender(state()),
        "profile-only": ProfileOnlyRecommender(state()),
        "lda": LdaRecommender.fit_on_posts(
            state(),
            [post.text for post in workload.posts],
            num_topics=workload.config.num_topics,
            iterations=30,
            seed=2,
        ),
        "popularity": PopularityRecommender(state()),
        "random": RandomRecommender(state(), seed=0),
    }

    harness = EffectivenessHarness(workload, k=10, max_posts=150, fanout_cap=3)
    results = harness.evaluate(recommenders)

    print()
    print(
        ascii_table(
            ["method", "P@10", "R@10", "F1", "NDCG", "MAP", "samples"],
            [result.row() for result in results],
            title="Effectiveness against generative ground truth",
        )
    )
    print(
        "\nReading: the context-aware system should lead; content-only\n"
        "misses interest-driven relevance, profile-only misses the moment,\n"
        "LDA trades quality for much higher per-event cost, and\n"
        "popularity/random set the floor."
    )


if __name__ == "__main__":
    main()
