"""Campaign simulation: a full synthetic day with budgets and pacing.

Generates a Twitter-like workload, replays it through the engine with
impression charging on, and reports the advertiser-side view: spend,
pacing, exhaustion, revenue and slate diversity.

Run:  python examples/campaign_simulation.py
"""

from __future__ import annotations

from collections import Counter

from repro import ContextAwareRecommender, EngineConfig, WorkloadConfig, generate_workload
from repro.eval.report import ascii_table


def main() -> None:
    workload = generate_workload(
        WorkloadConfig(
            num_users=300,
            num_ads=800,
            num_posts=400,
            seed=4,
            budgeted_fraction=0.8,
            budget_range=(20.0, 120.0),
        )
    )
    print("Workload:", {k: round(v, 1) for k, v in workload.stats().items()})

    recommender = ContextAwareRecommender.from_workload(
        workload, EngineConfig(pacing_enabled=True)
    )
    engine = recommender.engine

    served: Counter[int] = Counter()
    for post in workload.posts:
        result = engine.post(post.author_id, post.text, post.timestamp)
        for delivery in result.deliveries:
            served.update(scored.ad_id for scored in delivery.slate)

    stats = engine.stats
    print(f"\nReplayed {stats.posts} posts → {stats.deliveries} deliveries, "
          f"{stats.impressions} impressions, revenue {stats.revenue:.1f}")
    print(f"Exhausted campaigns: {stats.retired_ads}")

    rows = []
    for ad_id, impressions in served.most_common(10):
        ad = engine.corpus.get(ad_id)
        state = engine.budget.state(ad_id)
        rows.append(
            [
                ad.advertiser,
                impressions,
                round(ad.bid, 2),
                round(state.spent, 1) if state else "uncapped",
                "retired" if not engine.corpus.is_active(ad_id) else "active",
            ]
        )
    print()
    print(
        ascii_table(
            ["advertiser", "impressions", "bid", "spend", "status"],
            rows,
            title="Top 10 advertisers by impressions",
        )
    )

    coverage = len(served) / len(workload.ads)
    print(f"\nSlate diversity: {len(served)} of {len(workload.ads)} ads "
          f"served at least once ({coverage:.0%}).")


if __name__ == "__main__":
    main()
