"""Operations day: the full system under production-like conditions.

One simulated day featuring everything a live deployment deals with:

* click feedback (the CTR quality term learning creative appeal),
* campaign churn (launches and endings mid-stream),
* a mid-day checkpoint + restore (crash recovery drill),
* feed assembly (ads actually interleaved into a user's timeline),
* a final advertiser/diversity report.

Run:  python examples/operations_day.py
"""

from __future__ import annotations

import random

from repro import (
    AdSlotPolicy,
    EngineConfig,
    FeedAssembler,
    WorkloadConfig,
    generate_workload,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.recommender import ContextAwareRecommender
from repro.datagen.churn import AdArrival, generate_churn
from repro.eval.diversity import advertiser_entropy, catalog_coverage
from repro.eval.report import ascii_table
from repro.stream.clicks import ClickSimulator
import tempfile
from pathlib import Path


def build_engine(workload):
    recommender = ContextAwareRecommender.from_workload(
        workload, EngineConfig(ctr_feedback=True)
    )
    return recommender.engine


def main() -> None:
    workload = generate_workload(
        WorkloadConfig(num_users=250, num_ads=900, num_posts=300, seed=12)
    )
    engine = build_engine(workload)
    churn = generate_churn(
        workload.topic_space,
        [ad.ad_id for ad in workload.ads],
        random.Random(3),
        arrivals=40,
        endings=25,
        duration_s=workload.config.duration_s,
    )
    churn_events = churn.events()
    clicks = ClickSimulator(random.Random(4))
    truth = workload.ground_truth

    served: list[int] = []
    slates_by_user: dict[int, list] = {}
    organic_by_user: dict[int, list[int]] = {}
    cursor = 0
    half = len(workload.posts) // 2
    checkpoint_path = Path(tempfile.mkdtemp()) / "engine.ckpt.json"

    for position, post in enumerate(workload.posts):
        while cursor < len(churn_events) and churn_events[cursor][0] <= post.timestamp:
            _, event = churn_events[cursor]
            if isinstance(event, AdArrival):
                engine.launch_campaign(event.ad, event.timestamp)
            else:
                engine.end_campaign(event.ad_id, event.timestamp)
            cursor += 1

        result = engine.post(post.author_id, post.text, post.timestamp)
        for delivery in result.deliveries:
            ids = [scored.ad_id for scored in delivery.slate]
            served.extend(ids)
            slates_by_user[delivery.user_id] = list(delivery.slate)
            organic_by_user.setdefault(delivery.user_id, []).append(post.msg_id)
            for click in clicks.click_events(
                delivery,
                lambda ad: truth.grade(ad, post.msg_id, delivery.user_id, post.timestamp)
                if ad in workload.ad_topics
                else 0.2,
            ):
                engine.record_click(
                    click.ad_id,
                    user_id=click.user_id,
                    slot_index=click.slot_index,
                )

        if position == half:
            save_checkpoint(checkpoint_path, engine)
            print(f"[{post.timestamp/3600:05.2f}h] checkpoint written "
                  f"({checkpoint_path.stat().st_size/1024:.0f} KiB) — simulating crash...")
            engine = build_engine(workload)
            load_checkpoint(checkpoint_path, engine)
            print(f"          restored: {engine.stats.posts} posts, "
                  f"revenue {engine.stats.revenue:.1f} carried over")

    print(f"\nDay complete: {engine.stats.posts} posts, "
          f"{engine.stats.deliveries} deliveries, "
          f"{engine.stats.impressions} impressions, "
          f"revenue {engine.stats.revenue:.1f}, "
          f"{engine.stats.retired_ads} campaigns ended/exhausted.")

    print(f"Corpus-wide realised CTR: {engine.ctr.global_ctr():.3f} "
          f"({len(engine.ctr.observed_ads())} ads with traffic)")

    print(f"Advertiser entropy: {advertiser_entropy(engine.corpus, served):.3f}   "
          f"catalog coverage: {catalog_coverage(engine.corpus, served):.1%}")

    # Render one user's assembled feed.
    user_id, slate = max(
        slates_by_user.items(), key=lambda item: len(item[1])
    )
    assembler = FeedAssembler(
        AdSlotPolicy(organic_between_ads=3, first_slot=2),
        advertiser_of={ad.ad_id: ad.advertiser for ad in engine.corpus.all_ads()},
    )
    feed = assembler.assemble(organic_by_user[user_id][-10:], slate)
    rows = []
    for item in feed:
        if item.kind == "organic":
            rows.append(["organic", f"msg {item.msg_id}"])
        else:
            rows.append(
                ["sponsored", engine.corpus.get(item.ad_id).advertiser]
            )
    print()
    print(ascii_table(["position", "content"],
                      rows, title=f"Assembled feed for user {user_id}"))


if __name__ == "__main__":
    main()
