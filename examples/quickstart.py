"""Quickstart: context-aware ads on a hand-built five-user network.

Builds everything from real English text — no synthetic workload — and
shows the engine reacting to what each user is reading *right now*:

* Tom posts about volleyball → his followers see sports ads;
* the same followers, minutes later reading a coffee post, see café ads;
* Luke's accumulated posting history (profile) biases his slates.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.ads.corpus import AdCorpus
from repro.ads.targeting import TargetingSpec, TimeWindow
from repro.core.config import EngineConfig, ScoringWeights
from repro.core.engine import AdEngine
from repro.datagen.adgen import ad_from_text
from repro.geo.point import GeoPoint
from repro.geo.regions import city_by_name
from repro.graph.social import SocialGraph
from repro.text.tokenizer import Tokenizer
from repro.text.vectorizer import TfidfVectorizer

USERS = {0: "Tom", 1: "Luke", 2: "Anna", 3: "Sam", 4: "Lia"}

POSTS = [
    (0, "The nation's best volleyball returns tomorrow night!", 9.0),
    (1, "Morning espresso at the new roastery downtown, amazing beans", 9.5),
    (0, "Our volleyball team needs new shoes before the finals", 10.0),
    (3, "Training for the marathon, long run along the river today", 11.0),
    (1, "Another coffee tasting flight — the Ethiopian roast wins", 13.0),
]

AD_SPECS = [
    ("sportco", "Volleyball gear sale: nets, balls and team shoes", 1.2, None),
    ("beanhouse", "Premium single-origin coffee beans, roasted daily", 1.0, None),
    ("runfast", "Marathon running shoes with carbon plates", 1.5, None),
    ("fitclub", "Gym membership deal: strength and conditioning", 0.8, None),
    ("cafelondon", "London cafe crawl pass — espresso bars near you", 0.9, "london"),
]


def build_engine() -> AdEngine:
    tokenizer = Tokenizer()
    vectorizer = TfidfVectorizer()
    vectorizer.fit(tokenizer.tokenize(text) for _, text, _ in POSTS)
    vectorizer.fit(tokenizer.tokenize(text) for _, text, _, _ in AD_SPECS)

    ads = []
    for ad_id, (advertiser, text, bid, city_name) in enumerate(AD_SPECS):
        targeting = TargetingSpec()
        if city_name is not None:
            city = city_by_name(city_name)
            targeting = TargetingSpec(
                circles=((city.center, 50.0),),
                time_windows=(TimeWindow(6.0, 20.0),),
            )
        ads.append(
            ad_from_text(
                ad_id, advertiser, text, vectorizer,
                tokenizer=tokenizer, bid=bid, targeting=targeting,
            )
        )
    corpus = AdCorpus(ads)

    graph = SocialGraph()
    for user_id in USERS:
        graph.add_user(user_id)
    # Everyone follows Tom; Anna and Sam also follow Luke.
    for follower in (1, 2, 3, 4):
        graph.follow(follower, 0)
    graph.follow(2, 1)
    graph.follow(3, 1)

    engine = AdEngine(
        corpus,
        graph,
        vectorizer,
        tokenizer=tokenizer,
        config=EngineConfig(k=3, weights=ScoringWeights(beta=0.6)),
    )
    london = city_by_name("london").center
    engine.register_user(0, london)
    engine.register_user(1, london)
    engine.register_user(2, GeoPoint(48.85, 2.35))  # Anna is in Paris
    engine.register_user(3, london)
    engine.register_user(4, None)  # Lia has location off
    return engine


def main() -> None:
    engine = build_engine()
    for author, text, hour in POSTS:
        result = engine.post(author, text, hour * 3600.0)
        print(f"\n[{hour:05.2f}h] {USERS[author]} posts: {text!r}")
        print(f"  fan-out: {result.num_deliveries} deliveries, "
              f"revenue {result.revenue:.2f}")
        for delivery in result.deliveries:
            slate = ", ".join(
                f"{engine.corpus.get(s.ad_id).advertiser}({s.score:.2f})"
                for s in delivery.slate
            )
            print(f"    → {USERS[delivery.user_id]:<5} sees: {slate or '(no ads)'}")

    print("\nProfiles after the session (top interests):")
    for user_id, name in USERS.items():
        interests = engine.profiles.get_or_create(user_id).top_interests(3)
        rendered = ", ".join(f"{term}={weight:.2f}" for term, weight in interests)
        print(f"  {name:<5} {rendered or '(never posted)'}")

    print("\nOne-off query — what would Lia see next to a sports story?")
    for scored in engine.slate_for_message(4, "championship volleyball finals", 14 * 3600.0):
        print(" ", engine.corpus.get(scored.ad_id).advertiser, round(scored.score, 3))


if __name__ == "__main__":
    main()
