"""Streaming throughput study: compare every matching strategy live.

Generates one workload and replays the same post stream through the four
strategies (shared candidates with and without the exactness guarantee,
per-user incremental maintenance, per-delivery exact probe), printing the
F3-style comparison the paper's efficiency section is built around.

Run:  python examples/streaming_throughput.py
"""

from __future__ import annotations

from repro import EngineConfig, WorkloadConfig, generate_workload
from repro.core.config import EngineMode
from repro.core.recommender import ContextAwareRecommender
from repro.eval.report import ascii_table
from repro.stream.simulator import FeedSimulator

STRATEGIES = {
    "car-shared (exact)": EngineConfig(mode=EngineMode.SHARED, exact_fallback=True),
    "car-approx": EngineConfig(mode=EngineMode.SHARED, exact_fallback=False),
    "car-incremental": EngineConfig(mode=EngineMode.INCREMENTAL, exact_fallback=True),
    "per-delivery-probe": EngineConfig(mode=EngineMode.EXACT),
}


def main() -> None:
    workload = generate_workload(
        WorkloadConfig(num_users=300, num_ads=2000, num_posts=200, seed=9)
    )
    print("Workload:", {k: round(v, 1) for k, v in workload.stats().items()})
    print()

    rows = []
    for label, base in STRATEGIES.items():
        import dataclasses

        config = dataclasses.replace(
            base, collect_deliveries=False, charge_impressions=False
        )
        recommender = ContextAwareRecommender.from_workload(workload, config)
        metrics = FeedSimulator(recommender.engine).run(workload.posts)
        stats = recommender.stats
        rows.append(
            [
                label,
                metrics.deliveries,
                round(metrics.deliveries_per_second(), 1),
                round(metrics.post_latency.p50() * 1e3, 2),
                round(metrics.post_latency.p99() * 1e3, 2),
                round(stats.fallback_rate(), 3),
            ]
        )

    print(
        ascii_table(
            ["strategy", "deliveries", "deliv/s", "p50 ms", "p99 ms", "fallback"],
            rows,
            title="Delivery throughput by matching strategy (2000 ads)",
        )
    )
    print(
        "\nShape to expect: at this corpus size a single cheap probe per\n"
        "delivery is competitive; grow --ads past ~4000 (see experiment F3)\n"
        "and the shared-candidate strategies pull away, since one probe is\n"
        "amortised over the whole fan-out while the per-delivery strategy\n"
        "pays it every time."
    )


if __name__ == "__main__":
    main()
